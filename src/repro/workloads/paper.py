"""The paper's exact scenarios: Figures 1, 2, 3, 6 and Table 1.

The paper prints Table 1 (the 15-round selection trace over the Figure 6
graph) but not the underlying numbers — Figure 6 is a drawing without edge
bandwidths.  Two printed facts pin the reconstruction down:

1. satisfaction 0.76 is shown alongside a delivered frame rate of 23, yet
   23/30 = 0.767; likewise 0.66 alongside 20 (20/30 = 0.667).  The printed
   values are therefore *rounded* — the true frame rates sit slightly below
   the printed integers (0.76·30 = 22.8, 0.66·30 = 19.8);
2. the greedy settles candidates in non-increasing satisfaction order, so
   the true satisfactions along Table 1's rows decrease monotonically (and,
   absent any stated tie rule, we reconstruct them *strictly* decreasing).

From these we assign each service a target frame rate (the ``_TARGET_FPS``
table below), encode it into link bandwidths and per-format compression
ratios, and obtain a scenario whose trace reproduces every row of Table 1
— same VT/CS sets in the same order, same selected service, same path, and
the same printed frame rate and satisfaction — which the E7 bench and the
test suite verify cell by cell.

The user model is the paper's: a single frame-rate preference with the
linear satisfaction ``S(fps) = fps / 30`` (minimum acceptable 0, ideal 30);
with one parameter, Equation 1 reduces to that single satisfaction.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.configuration import Configuration
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import LinearSatisfaction, PiecewiseLinearSatisfaction
from repro.formats.format import MediaFormat, MediaType
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.scenario import Scenario

__all__ = [
    "figure1_satisfaction",
    "figure2_service",
    "figure3_scenario",
    "figure6_scenario",
    "table1_expected_rows",
]


# ======================================================================
# Figure 1 — a possible satisfaction function for the frame rate
# ======================================================================

def figure1_satisfaction() -> PiecewiseLinearSatisfaction:
    """Figure 1's frame-rate satisfaction function.

    The figure shows satisfaction 0 up to a minimum acceptable rate of
    5 fps, a monotone rise across the 5..20 range, and 1 at the ideal of
    20 fps.  The exact curve is drawn, not tabulated; we use a concave
    piecewise-linear shape matching the drawing's proportions.
    """
    return PiecewiseLinearSatisfaction(
        [(5.0, 0.0), (10.0, 0.55), (15.0, 0.85), (20.0, 1.0)]
    )


# ======================================================================
# Figures 2 & 3 — the construction example
# ======================================================================

#: Fixed video geometry used by both paper scenarios.  Table 1's example
#: varies only the frame rate, so resolution and color depth are pinned to
#: single-value domains (QVGA at 24-bit color).
_PIXELS = 320.0 * 240.0
_DEPTH = 24.0
_RAW_FRAME_BITS = _PIXELS * _DEPTH


def _paper_parameters() -> ParameterSet:
    """Frame rate free in [0, 60]; resolution and depth pinned."""
    return ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([_PIXELS])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([_DEPTH])),
        ]
    )


def _paper_user(budget: float = 100.0) -> UserProfile:
    """The Table 1 user: linear frame-rate satisfaction, ideal 30 fps."""
    return UserProfile(
        user_id="paper-user",
        satisfaction_functions={FRAME_RATE: LinearSatisfaction(0.0, 30.0)},
        budget=budget,
    )


def _source_variant(registry: FormatRegistry, format_name: str) -> ContentVariant:
    return ContentVariant(
        format=registry.get(format_name),
        configuration=Configuration(
            {FRAME_RATE: 30.0, RESOLUTION: _PIXELS, COLOR_DEPTH: _DEPTH}
        ),
        title="paper content",
    )


def figure3_scenario() -> Scenario:
    """The Figure 3 construction example.

    One sender (output links F3, F4, F5), one receiver (input links F14,
    F15, F16), and seven intermediate trans-coding services.  T1 is the
    Figure 2 vertex: input links {F5, F6}, output links {F10..F13}.  Edge
    bandwidths are uniform — this scenario demonstrates *construction*
    (which edges exist), not quality trade-offs.
    """
    registry = FormatRegistry()
    for index in (3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 16):
        registry.define(f"F{index}", MediaType.VIDEO, codec=f"codec-{index}", compression_ratio=12.0)

    def transcoder(service_id: str, inputs, outputs) -> ServiceDescriptor:
        return ServiceDescriptor(
            service_id=service_id,
            input_formats=tuple(inputs),
            output_formats=tuple(outputs),
            cost=1.0,
        )

    catalog = ServiceCatalog(
        [
            transcoder("T1", ["F5", "F6"], ["F10", "F11", "F12", "F13"]),
            transcoder("T2", ["F3"], ["F6", "F8"]),
            transcoder("T3", ["F4"], ["F9"]),
            transcoder("T4", ["F9"], ["F11", "F12"]),
            transcoder("T5", ["F8"], ["F14"]),
            transcoder("T6", ["F10", "F11"], ["F15"]),
            transcoder("T7", ["F12", "F13"], ["F16"]),
        ]
    )

    topology = NetworkTopology()
    topology.node("ns")
    topology.node("nr")
    for index in range(1, 8):
        topology.node(f"n{index}")
    uniform_bandwidth = 10e6
    for index in range(1, 8):
        topology.link("ns", f"n{index}", uniform_bandwidth)
        topology.link(f"n{index}", "nr", uniform_bandwidth)

    placement = ServicePlacement(
        topology, {f"T{index}": f"n{index}" for index in range(1, 8)}
    )

    content = ContentProfile(
        content_id="figure3-content",
        variants=[
            _source_variant(registry, "F3"),
            _source_variant(registry, "F4"),
            _source_variant(registry, "F5"),
        ],
    )
    device = DeviceProfile(
        device_id="figure3-device",
        decoders=["F14", "F15", "F16"],
        max_frame_rate=30.0,
    )
    return Scenario(
        name="figure3",
        registry=registry,
        parameters=_paper_parameters(),
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=content,
        device=device,
        user=_paper_user(),
        sender_node="ns",
        receiver_node="nr",
        description="Figure 3 graph-construction example",
    )


def figure2_service() -> ServiceDescriptor:
    """Figure 2's trans-coding service: T1 of the Figure 3 example."""
    return figure3_scenario().catalog.get("T1")


# ======================================================================
# Figure 6 + Table 1 — the worked selection example
# ======================================================================

#: Receiver access-link bandwidth.  All last hops share it; per-format
#: compression ratios turn it into the per-parent frame-rate ceilings that
#: Table 1 exhibits.
_ACCESS_BW = 2_000_000.0

#: True (pre-rounding) frame rate each service delivers when settled,
#: reconstructed from Table 1 as described in the module docstring.  The
#: printed table shows round(fps) and round(fps/30, 2).
_TARGET_FPS: Dict[str, float] = {
    "T1": 22.86,
    "T2": 22.90,
    "T3": 22.94,
    "T4": 27.00,
    "T5": 27.10,
    "T6": 19.80,
    "T7": 19.86,
    "T8": 19.90,
    "T9": 18.00,   # never settled before the receiver (0.60)
    "T10": 30.00,
    "T11": 22.83,
    "T12": 22.74,
    "T13": 22.80,
    "T14": 22.70,
    "T15": 10.00,  # never settled (0.33)
    "T19": 12.00,  # never settled (<= 0.50 after widest-path routing)
    "T20": 29.90,
}

#: Frame-rate ceiling each receiver-decodable format hits on the access
#: link (bandwidth / bits-per-frame).  The receiver's final rate via T7 is
#: 19.75 — printed as "20" and "0.66" exactly like Table 1's last row.
_ACCESS_FPS: Dict[str, float] = {
    "F6": 15.5,    # output of T6
    "F7": 19.75,   # output of T7 — the winning last hop
    "F8": 16.0,    # output of T8
    "F10": 15.0,   # output of T10
    "F11o": 12.5,  # output of T11
    "F12o": 12.3,  # output of T12
    "F13o": 12.4,  # output of T13
    "F14o": 12.2,  # output of T14
    "F19": 12.0,   # output of T19
    "F20": 15.2,   # output of T20
}

#: Bits per encoded frame for formats that never reach the receiver
#: (outputs of T1..T5, T9, T15); any plausible value works.
_INTERIOR_FRAME_BITS = 150_000.0

#: Bits per encoded frame of the sender's source format F0.
_SOURCE_FRAME_BITS = _RAW_FRAME_BITS / 10.0  # compression ratio 10


def _figure6_registry() -> FormatRegistry:
    registry = FormatRegistry()

    def define(name: str, frame_bits: float) -> None:
        # MediaFormat models frame size as raw_bits / compression_ratio.
        registry.define(
            name,
            MediaType.VIDEO,
            codec=name.lower(),
            compression_ratio=_RAW_FRAME_BITS / frame_bits,
        )

    define("F0", _SOURCE_FRAME_BITS)
    for name, access_fps in _ACCESS_FPS.items():
        define(name, _ACCESS_BW / access_fps)
    for name in ("F1", "F2", "F3", "F4", "F5", "F9", "F15o"):
        define(name, _INTERIOR_FRAME_BITS)
    return registry


def _figure6_catalog(include_t7: bool) -> ServiceCatalog:
    """The twenty trans-coding services of Figure 6.

    T1..T10 accept the source format F0.  T11..T15, T19, T20 form the
    second tier: T11 follows T1, T12/T13 follow T2, T14 follows T3, T15
    follows T4/T5, and T19/T20 follow T10 — exactly the neighbor-insertion
    order Table 1's CS column reveals.
    """

    def transcoder(service_id, inputs, outputs) -> ServiceDescriptor:
        return ServiceDescriptor(
            service_id=service_id,
            input_formats=tuple(inputs),
            output_formats=tuple(outputs),
            cost=1.0,
            description=f"Figure 6 service {service_id}",
        )

    services = [
        transcoder("T1", ["F0"], ["F1"]),
        transcoder("T2", ["F0"], ["F2"]),
        transcoder("T3", ["F0"], ["F3"]),
        transcoder("T4", ["F0"], ["F4"]),
        transcoder("T5", ["F0"], ["F5"]),
        transcoder("T6", ["F0"], ["F6"]),
        transcoder("T8", ["F0"], ["F8"]),
        transcoder("T9", ["F0"], ["F9"]),
        transcoder("T10", ["F0"], ["F10"]),
        transcoder("T11", ["F1"], ["F11o"]),
        transcoder("T12", ["F2"], ["F12o"]),
        transcoder("T13", ["F2"], ["F13o"]),
        transcoder("T14", ["F3"], ["F14o"]),
        transcoder("T15", ["F4", "F5"], ["F15o"]),
        transcoder("T19", ["F10"], ["F19"]),
        transcoder("T20", ["F10"], ["F20"]),
    ]
    if include_t7:
        services.append(transcoder("T7", ["F0"], ["F7"]))
    return ServiceCatalog(services)


def _figure6_topology(include_t7: bool) -> NetworkTopology:
    """Hosts and links whose bandwidths encode the ``_TARGET_FPS`` table.

    Every service runs on its own host ``n<i>``; the sender is on ``ns``
    and the receiver on ``nr``.  A first-tier link ``ns--n<i>`` carries F0
    at exactly the service's target rate; a second-tier link carries the
    parent's output format at the child's target rate; every access link
    ``n<i>--nr`` has the same 2 Mbit/s, the per-format ceilings coming from
    frame size.
    """
    topology = NetworkTopology()
    topology.node("ns")
    topology.node("nr")
    first_tier = ["T1", "T2", "T3", "T4", "T5", "T6", "T8", "T9", "T10"]
    if include_t7:
        first_tier.append("T7")
    second_tier = ["T11", "T12", "T13", "T14", "T15", "T19", "T20"]
    for service_id in first_tier + second_tier:
        topology.node(f"n{service_id[1:]}")

    for service_id in first_tier:
        bandwidth = _TARGET_FPS[service_id] * _SOURCE_FRAME_BITS
        topology.link("ns", f"n{service_id[1:]}", bandwidth, delay_ms=5.0)

    interior = _INTERIOR_FRAME_BITS
    f10_bits = _ACCESS_BW / _ACCESS_FPS["F10"]
    second_tier_links = [
        ("n1", "n11", _TARGET_FPS["T11"] * interior),
        ("n2", "n12", _TARGET_FPS["T12"] * interior),
        ("n2", "n13", _TARGET_FPS["T13"] * interior),
        ("n3", "n14", _TARGET_FPS["T14"] * interior),
        ("n5", "n15", _TARGET_FPS["T15"] * interior),
        ("n4", "n15", 9.0 * interior),  # weaker than the T5 route
        ("n10", "n19", _TARGET_FPS["T19"] * f10_bits),
        ("n10", "n20", _TARGET_FPS["T20"] * f10_bits),
    ]
    for a, b, bandwidth in second_tier_links:
        topology.link(a, b, bandwidth, delay_ms=5.0)

    access_hosts = ["n6", "n8", "n10", "n11", "n12", "n13", "n14", "n19", "n20"]
    if include_t7:
        access_hosts.append("n7")
    for host in access_hosts:
        topology.link(host, "nr", _ACCESS_BW, delay_ms=10.0)
    return topology


def figure6_scenario(include_t7: bool = True, budget: float = 100.0) -> Scenario:
    """The Figure 6 / Table 1 worked example.

    With T7 (the paper's primary case) the selected path is
    ``sender, T7, receiver`` at printed frame rate 20 and satisfaction
    0.66.  Without T7 (Figure 6 also draws that variant) the best last hop
    degrades to T8 and the satisfaction drops to 0.53.
    """
    registry = _figure6_registry()
    catalog = _figure6_catalog(include_t7)
    topology = _figure6_topology(include_t7)
    placement = ServicePlacement(
        topology,
        {service_id: f"n{service_id[1:]}" for service_id in catalog.ids()},
    )
    content = ContentProfile(
        content_id="figure6-content",
        variants=[_source_variant(registry, "F0")],
        title="Figure 6 source stream",
    )
    decoders = ["F6", "F7", "F8", "F10", "F11o", "F12o", "F13o", "F14o", "F19", "F20"]
    if not include_t7:
        decoders.remove("F7")
    device = DeviceProfile(
        device_id="figure6-device",
        decoders=decoders,
        max_frame_rate=60.0,
    )
    return Scenario(
        name="figure6" if include_t7 else "figure6-without-t7",
        registry=registry,
        parameters=_paper_parameters(),
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=content,
        device=device,
        user=_paper_user(budget),
        sender_node="ns",
        receiver_node="nr",
        description="Figure 6 / Table 1 worked example",
    )


# ======================================================================
# Table 1 — the paper's printed rows, as data
# ======================================================================

def table1_expected_rows() -> List[Dict[str, object]]:
    """Table 1 exactly as printed, one dict per round.

    Keys: ``vt`` and ``cs`` (tuples in the paper's listing order),
    ``selected``, ``path`` (tuple), ``frame_rate`` (printed integer as a
    string) and ``satisfaction`` (printed two-decimal string).
    """

    def row(vt, cs, selected, path, fps, sat) -> Dict[str, object]:
        return {
            "vt": tuple(vt),
            "cs": tuple(cs),
            "selected": selected,
            "path": tuple(path),
            "frame_rate": fps,
            "satisfaction": sat,
        }

    t = [f"T{i}" for i in range(0, 21)]  # t[1] == "T1" etc.
    return [
        row(
            ["sender"],
            [t[1], t[2], t[3], t[4], t[5], t[6], t[7], t[8], t[9], t[10]],
            "T10", ["sender", "T10"], "30", "1.00",
        ),
        row(
            ["sender", "T10"],
            [t[1], t[2], t[3], t[4], t[5], t[6], t[7], t[8], t[9], t[19], t[20], "receiver"],
            "T20", ["sender", "T10", "T20"], "30", "1.00",
        ),
        row(
            ["sender", "T10", "T20"],
            [t[1], t[2], t[3], t[4], t[5], t[6], t[7], t[8], t[9], t[19], "receiver"],
            "T5", ["sender", "T5"], "27", "0.90",
        ),
        row(
            ["sender", "T10", "T20", "T5"],
            [t[1], t[2], t[3], t[4], t[6], t[7], t[8], t[9], t[19], t[15], "receiver"],
            "T4", ["sender", "T4"], "27", "0.90",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4"],
            [t[1], t[2], t[3], t[6], t[7], t[8], t[9], t[19], t[15], "receiver"],
            "T3", ["sender", "T3"], "23", "0.76",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3"],
            [t[1], t[2], t[6], t[7], t[8], t[9], t[19], t[15], t[14], "receiver"],
            "T2", ["sender", "T2"], "23", "0.76",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2"],
            [t[1], t[6], t[7], t[8], t[9], t[19], t[15], t[14], t[12], t[13], "receiver"],
            "T1", ["sender", "T1"], "23", "0.76",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1"],
            [t[6], t[7], t[8], t[9], t[19], t[15], t[14], t[12], t[13], t[11], "receiver"],
            "T11", ["sender", "T1", "T11"], "23", "0.76",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1", "T11"],
            [t[6], t[7], t[8], t[9], t[19], t[15], t[14], t[12], t[13], "receiver"],
            "T13", ["sender", "T2", "T13"], "23", "0.76",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1", "T11", "T13"],
            [t[6], t[7], t[8], t[9], t[19], t[15], t[14], t[12], "receiver"],
            "T12", ["sender", "T2", "T12"], "23", "0.76",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1", "T11", "T13", "T12"],
            [t[6], t[7], t[8], t[9], t[19], t[15], t[14], "receiver"],
            "T14", ["sender", "T3", "T14"], "23", "0.76",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1", "T11", "T13", "T12", "T14"],
            [t[6], t[7], t[8], t[9], t[19], t[15], "receiver"],
            "T8", ["sender", "T8"], "20", "0.66",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1", "T11", "T13", "T12", "T14", "T8"],
            [t[6], t[7], t[9], t[19], t[15], "receiver"],
            "T7", ["sender", "T7"], "20", "0.66",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1", "T11", "T13", "T12", "T14", "T8", "T7"],
            [t[6], t[9], t[19], t[15], "receiver"],
            "T6", ["sender", "T6"], "20", "0.66",
        ),
        row(
            ["sender", "T10", "T20", "T5", "T4", "T3", "T2", "T1", "T11", "T13", "T12", "T14", "T8", "T7", "T6"],
            [t[9], t[19], t[15], "receiver"],
            "receiver", ["sender", "T7", "receiver"], "20", "0.66",
        ),
    ]
