"""Seeded synthetic scenario generation.

The paper evaluates on one hand-drawn graph; the scalability, ablation, and
property-based experiments need families of scenarios.  The generator
builds, from a single integer seed:

- a format universe with varied compression ratios;
- a random connected topology (spanning tree + extra links) with random
  link bandwidths, delays, and costs;
- a guaranteed-feasible *backbone* chain of services from the sender's
  format to a device-decodable format (so "no path exists" never happens
  unless explicitly requested);
- random additional services with random format signatures, caps, and
  costs, placed on random hosts;
- user/content/device profiles consistent with it all.

Everything is driven by ``random.Random(seed)`` — identical seeds yield
identical scenarios, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


from repro.core.configuration import Configuration
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import LinearSatisfaction, PiecewiseLinearSatisfaction
from repro.errors import ValidationError
from repro.formats.format import MediaType
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.scenario import Scenario

__all__ = ["SyntheticConfig", "generate_scenario"]

_RESOLUTIONS = [176.0 * 144.0, 320.0 * 240.0, 640.0 * 480.0]
_DEPTHS = [8.0, 16.0, 24.0]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs for one synthetic scenario family member."""

    seed: int = 0
    n_services: int = 30
    n_formats: int = 12
    n_nodes: int = 10
    extra_links: int = 8
    backbone_hops: int = 3
    min_bandwidth_bps: float = 1e6
    max_bandwidth_bps: float = 20e6
    max_service_cost: float = 4.0
    budget: float = 1_000.0
    #: "single": frame-rate-only preferences (the paper's example shape);
    #: "rich": frame rate + resolution preferences with free color depth.
    preference_mode: str = "single"
    #: Probability that a non-backbone service caps its output frame rate.
    cap_probability: float = 0.4
    #: How many extra decodable formats the device gets beyond the
    #: backbone's final format.
    extra_decoders: int = 2
    #: Fraction of transcoders that also get a hardware-tier sibling
    #: (``<id>-hw``: higher cost, much lower CPU demand).  0 keeps the
    #: catalog identical to earlier generator versions.
    hw_tier_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_services < self.backbone_hops:
            raise ValidationError("need at least backbone_hops services")
        if self.backbone_hops < 1:
            raise ValidationError("backbone needs at least one hop")
        if self.n_formats < self.backbone_hops + 1:
            raise ValidationError("need more formats than backbone hops")
        if self.n_nodes < 3:
            raise ValidationError("need at least sender, proxy, receiver nodes")
        if self.preference_mode not in ("single", "rich"):
            raise ValidationError(f"unknown preference mode {self.preference_mode!r}")
        if not 0.0 <= self.cap_probability <= 1.0:
            raise ValidationError("cap probability must lie in [0, 1]")
        if not 0.0 <= self.hw_tier_fraction <= 1.0:
            raise ValidationError("hw tier fraction must lie in [0, 1]")


def generate_scenario(config: SyntheticConfig) -> Scenario:
    """Build one deterministic scenario from ``config``."""
    rng = random.Random(config.seed)

    registry = _make_formats(rng, config)
    format_names = registry.names()
    topology = _make_topology(rng, config)
    node_ids = topology.node_ids()
    sender_node, receiver_node = node_ids[0], node_ids[-1]
    proxy_nodes = node_ids[1:-1] or [node_ids[0]]

    parameters, user = _make_preferences(rng, config)

    # Backbone: source format -> ... -> decodable format, always feasible.
    backbone_formats = rng.sample(format_names, config.backbone_hops + 1)
    source_format = backbone_formats[0]
    final_format = backbone_formats[-1]

    catalog = ServiceCatalog()
    placement = ServicePlacement(topology)
    for hop in range(config.backbone_hops):
        service = ServiceDescriptor(
            service_id=f"S{hop + 1}",
            input_formats=(backbone_formats[hop],),
            output_formats=(backbone_formats[hop + 1],),
            cost=rng.uniform(0.5, config.max_service_cost),
            description="backbone service",
        )
        catalog.add(service)
        placement.place(service.service_id, rng.choice(proxy_nodes))

    extra_count = config.n_services - config.backbone_hops
    for index in range(extra_count):
        inputs = tuple(rng.sample(format_names, rng.randint(1, 2)))
        remaining = [f for f in format_names if f not in inputs]
        outputs = tuple(rng.sample(remaining, rng.randint(1, 2)))
        caps = {}
        if rng.random() < config.cap_probability:
            caps[FRAME_RATE] = rng.uniform(10.0, 50.0)
        service = ServiceDescriptor(
            service_id=f"X{index + 1}",
            input_formats=inputs,
            output_formats=outputs,
            output_caps=caps,
            cost=rng.uniform(0.5, config.max_service_cost),
            description="random service",
        )
        catalog.add(service)
        placement.place(service.service_id, rng.choice(proxy_nodes))

    # Hardware-tier siblings draw from their own stream so a fraction of
    # zero leaves the catalog byte-identical to earlier generator versions.
    if config.hw_tier_fraction > 0.0:
        hw_rng = random.Random(f"{config.seed}:hw-tier")
        for descriptor in list(catalog.transcoders()):
            if hw_rng.random() >= config.hw_tier_fraction:
                continue
            sibling = ServiceDescriptor(
                service_id=f"{descriptor.service_id}-hw",
                input_formats=descriptor.input_formats,
                output_formats=descriptor.output_formats,
                output_caps=dict(descriptor.output_caps),
                cost=descriptor.cost * 1.5,
                cpu_factor=descriptor.cpu_factor * 0.25,
                memory_mb=descriptor.memory_mb,
                description=f"hw tier of {descriptor.service_id}",
                tier="hw",
            )
            catalog.add(sibling)
            placement.place(
                sibling.service_id, placement.node_of(descriptor.service_id)
            )

    source_values = {
        FRAME_RATE: 30.0,
        RESOLUTION: _RESOLUTIONS[-1],
        COLOR_DEPTH: _DEPTHS[-1],
    }
    content = ContentProfile(
        content_id=f"synthetic-{config.seed}",
        variants=[
            ContentVariant(
                format=registry.get(source_format),
                configuration=Configuration(source_values),
                title=f"synthetic content (seed {config.seed})",
            )
        ],
    )

    decoder_pool = [f for f in format_names if f != final_format]
    decoders = [final_format] + rng.sample(
        decoder_pool, min(config.extra_decoders, len(decoder_pool))
    )
    device = DeviceProfile(
        device_id=f"device-{config.seed}",
        decoders=decoders,
        max_frame_rate=rng.choice([15.0, 25.0, 30.0, 60.0]),
        max_resolution=rng.choice(_RESOLUTIONS),
        max_color_depth=rng.choice(_DEPTHS),
    )

    return Scenario(
        name=f"synthetic-{config.seed}",
        registry=registry,
        parameters=parameters,
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=content,
        device=device,
        user=user,
        sender_node=sender_node,
        receiver_node=receiver_node,
        description=(
            f"synthetic scenario: {config.n_services} services, "
            f"{config.n_formats} formats, {config.n_nodes} nodes, "
            f"seed {config.seed}"
        ),
    )


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------

def _make_formats(rng: random.Random, config: SyntheticConfig) -> FormatRegistry:
    registry = FormatRegistry()
    for index in range(config.n_formats):
        registry.define(
            f"G{index}",
            MediaType.VIDEO,
            codec=f"codec-{index}",
            compression_ratio=rng.uniform(8.0, 40.0),
        )
    return registry


def _make_topology(rng: random.Random, config: SyntheticConfig) -> NetworkTopology:
    topology = NetworkTopology()
    node_ids = [f"node{index}" for index in range(config.n_nodes)]
    for node_id in node_ids:
        topology.node(node_id, cpu_mips=rng.uniform(500.0, 4000.0), memory_mb=2048.0)

    def random_link(a: str, b: str) -> None:
        topology.link(
            a,
            b,
            bandwidth_bps=rng.uniform(config.min_bandwidth_bps, config.max_bandwidth_bps),
            delay_ms=rng.uniform(1.0, 30.0),
            loss_rate=rng.uniform(0.0, 0.02),
            cost=rng.uniform(0.0, 0.5),
        )

    # Random spanning tree keeps the topology connected.
    shuffled = node_ids[:]
    rng.shuffle(shuffled)
    for index in range(1, len(shuffled)):
        random_link(shuffled[index], rng.choice(shuffled[:index]))
    added = 0
    attempts = 0
    while added < config.extra_links and attempts < config.extra_links * 20:
        attempts += 1
        a, b = rng.sample(node_ids, 2)
        if not topology.has_link(a, b):
            random_link(a, b)
            added += 1
    return topology


def _make_preferences(rng: random.Random, config: SyntheticConfig):
    if config.preference_mode == "single":
        parameters = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
                Parameter(RESOLUTION, "pixels", DiscreteDomain(_RESOLUTIONS)),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain(_DEPTHS)),
            ]
        )
        functions = {FRAME_RATE: LinearSatisfaction(0.0, 30.0)}
    else:
        parameters = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
                Parameter(RESOLUTION, "pixels", DiscreteDomain(_RESOLUTIONS)),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain(_DEPTHS)),
            ]
        )
        functions = {
            FRAME_RATE: LinearSatisfaction(0.0, 30.0),
            RESOLUTION: PiecewiseLinearSatisfaction(
                [
                    (_RESOLUTIONS[0], 0.0),
                    (_RESOLUTIONS[1], 0.7),
                    (_RESOLUTIONS[2], 1.0),
                ]
            ),
        }
    user = UserProfile(
        user_id=f"synthetic-user-{config.seed}",
        satisfaction_functions=functions,
        budget=config.budget,
    )
    return parameters, user
