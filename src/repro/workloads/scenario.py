"""The scenario bundle: everything one delivery session needs.

A :class:`Scenario` gathers the pieces the paper's pipeline consumes — the
format registry, the QoS parameter set, the service catalog with placement
on a topology, and the profiles — and offers shortcuts to build the graph,
run the selector, or open a full runtime session.  Both the paper scenarios
and the synthetic generator produce this type, so tests, examples, and
benches share one vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.graph import AdaptationGraph, AdaptationGraphBuilder
from repro.core.parameters import ParameterSet
from repro.core.selection import QoSPathSelector, SelectionResult, TieBreakPolicy
from repro.formats.registry import FormatRegistry
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.policy.document import PolicyDocument
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.runtime.session import AdaptationSession
from repro.services.catalog import ServiceCatalog

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """A complete, self-consistent content-adaptation scenario."""

    name: str
    registry: FormatRegistry
    parameters: ParameterSet
    catalog: ServiceCatalog
    topology: NetworkTopology
    placement: ServicePlacement
    content: ContentProfile
    device: DeviceProfile
    user: UserProfile
    sender_node: str
    receiver_node: str
    context: Optional[ContextProfile] = None
    description: str = ""
    #: Optional pre-planning policy evaluated before the selector
    #: (see :mod:`repro.policy`); ``None`` means every request plans.
    policy: Optional[PolicyDocument] = None

    # ------------------------------------------------------------------
    # Shortcuts
    # ------------------------------------------------------------------
    def build_graph(self, check_resources: bool = True) -> AdaptationGraph:
        """Construct the (unpruned) adaptation graph for this scenario."""
        builder = AdaptationGraphBuilder(
            self.catalog, self.placement, check_resources=check_resources
        )
        return builder.build(
            content=self.content,
            device=self.device,
            sender_node=self.sender_node,
            receiver_node=self.receiver_node,
            context_caps=(
                self.context.parameter_caps() if self.context is not None else None
            ),
        )

    def selector(
        self,
        graph: Optional[AdaptationGraph] = None,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        record_trace: bool = True,
    ) -> QoSPathSelector:
        """A ready-to-run selector over this scenario's graph."""
        return QoSPathSelector.for_user(
            graph=graph if graph is not None else self.build_graph(),
            registry=self.registry,
            parameters=self.parameters,
            user=self.user,
            tie_break=tie_break,
            record_trace=record_trace,
        )

    def select(self, **kwargs) -> SelectionResult:
        """Build the graph and run the selector in one step."""
        return self.selector(**kwargs).run()

    def session(
        self,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        prune: bool = True,
    ) -> AdaptationSession:
        """A full runtime session over this scenario."""
        return AdaptationSession(
            registry=self.registry,
            parameters=self.parameters,
            catalog=self.catalog,
            placement=self.placement,
            content=self.content,
            device=self.device,
            user=self.user,
            sender_node=self.sender_node,
            receiver_node=self.receiver_node,
            context=self.context,
            tie_break=tie_break,
            prune=prune,
        )
