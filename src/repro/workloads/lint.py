"""Scenario linting: catch inconsistent hand-built scenarios early.

A scenario straddles five registries (formats, parameters, services,
nodes, profiles); nothing in the dataclass itself forces them to agree.
:func:`lint_scenario` cross-checks them and returns structured findings:

- every format referenced by services, content, and device decoders is
  registered;
- every placed service exists in the catalog and sits on a topology node,
  and every catalog service is placed;
- sender/receiver nodes exist and are connected to the rest;
- every configuration and cap parameter is in the parameter set, with
  values inside their domains;
- the user's preference parameters exist;
- (warning) services whose inputs no one produces, or whose outputs no
  one consumes — allowed by the paper but usually authoring mistakes;
- (warning) a device that cannot decode any producible format — selection
  is guaranteed to FAIL.

Errors mean selection would crash or silently misbehave; warnings mean it
will run but probably not do what the author intended.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.workloads.scenario import Scenario

__all__ = ["Severity", "Finding", "lint_scenario"]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One lint result."""

    severity: Severity
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.subject}: {self.message}"


def lint_scenario(scenario: Scenario) -> List[Finding]:
    """Cross-check a scenario; returns findings (empty = clean)."""
    findings: List[Finding] = []
    error = lambda subject, message: findings.append(  # noqa: E731
        Finding(Severity.ERROR, subject, message)
    )
    warning = lambda subject, message: findings.append(  # noqa: E731
        Finding(Severity.WARNING, subject, message)
    )

    registry = scenario.registry
    parameters = scenario.parameters

    # ------------------------------------------------------------------
    # Formats referenced anywhere must be registered.
    # ------------------------------------------------------------------
    for descriptor in scenario.catalog:
        for fmt in (*descriptor.input_formats, *descriptor.output_formats):
            if fmt not in registry:
                error(
                    descriptor.service_id,
                    f"references unregistered format {fmt!r}",
                )
    for variant in scenario.content.variants:
        if variant.format.name not in registry:
            error(
                scenario.content.content_id,
                f"variant format {variant.format.name!r} is unregistered",
            )
    for decoder in scenario.device.decoders:
        if decoder not in registry:
            error(
                scenario.device.device_id,
                f"decoder {decoder!r} is unregistered",
            )

    # ------------------------------------------------------------------
    # Placement <-> catalog <-> topology agreement.
    # ------------------------------------------------------------------
    placed = scenario.placement.as_dict()
    for service_id, node_id in placed.items():
        if service_id not in scenario.catalog:
            error(service_id, "placed but not in the catalog")
        if node_id not in scenario.topology:
            error(service_id, f"placed on unknown node {node_id!r}")
    for descriptor in scenario.catalog:
        if descriptor.service_id not in placed:
            warning(
                descriptor.service_id,
                "in the catalog but unplaced (the graph builder will skip it)",
            )

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    for label, node in (
        ("sender_node", scenario.sender_node),
        ("receiver_node", scenario.receiver_node),
    ):
        if node not in scenario.topology:
            error(label, f"node {node!r} is not in the topology")
    if (
        scenario.sender_node in scenario.topology
        and scenario.receiver_node in scenario.topology
        and scenario.sender_node != scenario.receiver_node
        and scenario.topology.widest_path(
            scenario.sender_node, scenario.receiver_node
        )
        is None
    ):
        error(
            "topology",
            f"{scenario.sender_node!r} and {scenario.receiver_node!r} are "
            f"disconnected",
        )

    # ------------------------------------------------------------------
    # Parameters: configurations, caps, preferences inside domains.
    # ------------------------------------------------------------------
    for variant in scenario.content.variants:
        for name, value in variant.configuration.items():
            if name not in parameters:
                error(
                    scenario.content.content_id,
                    f"configuration uses unknown parameter {name!r}",
                )
            elif parameters[name].clamp_down(value) is None:
                error(
                    scenario.content.content_id,
                    f"{name}={value:g} lies below the domain minimum",
                )
    for descriptor in scenario.catalog:
        for name in descriptor.output_caps:
            if name not in parameters:
                warning(
                    descriptor.service_id,
                    f"caps unknown parameter {name!r} (ignored by the optimizer)",
                )
    for name in scenario.user.preference_parameters():
        if name not in parameters:
            error(
                scenario.user.user_id,
                f"has a preference for unknown parameter {name!r}",
            )

    # ------------------------------------------------------------------
    # Format flow sanity (warnings).
    # ------------------------------------------------------------------
    produced = set(scenario.content.format_names())
    for descriptor in scenario.catalog:
        produced.update(descriptor.output_formats)
    consumed = set(scenario.device.decoders)
    for descriptor in scenario.catalog:
        consumed.update(descriptor.input_formats)
    for descriptor in scenario.catalog:
        if not any(fmt in produced for fmt in descriptor.input_formats):
            warning(
                descriptor.service_id,
                "no one produces any of its input formats",
            )
        if not any(fmt in consumed for fmt in descriptor.output_formats):
            warning(
                descriptor.service_id,
                "no one consumes any of its output formats",
            )
    if not any(fmt in produced for fmt in scenario.device.decoders):
        warning(
            scenario.device.device_id,
            "cannot decode any producible format; selection will FAIL",
        )

    # ------------------------------------------------------------------
    # Embedded pre-planning policy (lazy import: repro.policy imports
    # profile serialization, which sits below this module).
    # ------------------------------------------------------------------
    if scenario.policy is not None:
        from repro.policy.lint import lint_policy

        findings.extend(lint_policy(scenario.policy, scenario=scenario))
    return findings
