"""The paper's introduction examples, as runnable scenarios.

Section 1 motivates composition with concrete web-adaptation cases:

- "trans-coding a 256-color depth jpeg image to a 2-color depth gif image
  can be carried out in two stages: the first stage covers converting
  256-color to 2-color depth, and the second step converts jpeg format to
  gif format" — :func:`jpeg_to_gif_scenario`;
- "conversion of HTML pages to WML pages ... conversion of HTML tables to
  plain text" — :func:`html_to_wml_scenario`.

Both scenarios exercise the image/text media types (one frame per second
bandwidth model) and demonstrate the composition claim: the two-stage
chain of simple services beats — or replaces — a monolithic converter.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.parameters import (
    COLOR_DEPTH,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import PiecewiseLinearSatisfaction, StepSatisfaction
from repro.formats.format import MediaType
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.scenario import Scenario

__all__ = ["jpeg_to_gif_scenario", "html_to_wml_scenario"]

#: A 1024x768 photograph.
_PHOTO_PIXELS = 1024.0 * 768.0


def jpeg_to_gif_scenario(include_monolith: bool = False) -> Scenario:
    """The 256-color JPEG → 2-color GIF example from the introduction.

    The stored content is a 256-color (8-bit) JPEG photograph; the client
    is a two-color e-ink badge that renders only 2-color GIF.  Two simple
    services compose the conversion:

    - ``color-reduce`` on the edge proxy: 8-bit JPEG → 1-bit JPEG;
    - ``jpeg-to-gif`` on the gateway: 1-bit JPEG → 1-bit GIF.

    With ``include_monolith`` a single-stage ``jpeg256-to-gif2`` converter
    is also offered at triple cost — letting callers compare the paper's
    composition story against the monolithic alternative.
    """
    registry = FormatRegistry()
    registry.define("jpeg-256c", MediaType.IMAGE, codec="jpeg", compression_ratio=10.0)
    registry.define("jpeg-2c", MediaType.IMAGE, codec="jpeg-mono", compression_ratio=12.0)
    registry.define("gif-2c", MediaType.IMAGE, codec="gif-mono", compression_ratio=8.0)

    topology = NetworkTopology()
    topology.node("webserver")
    topology.node("proxy")
    topology.node("gateway")
    topology.node("badge", cpu_mips=10.0, memory_mb=4.0)
    topology.link("webserver", "proxy", 8e6, delay_ms=5.0)
    topology.link("proxy", "gateway", 2e6, delay_ms=10.0)
    topology.link("gateway", "badge", 64e3, delay_ms=60.0)  # pager-class link

    services = [
        ServiceDescriptor(
            service_id="color-reduce",
            input_formats=("jpeg-256c",),
            output_formats=("jpeg-2c",),
            output_caps={COLOR_DEPTH: 1.0},
            cost=0.5,
            description="256-color to 2-color depth reduction",
        ),
        ServiceDescriptor(
            service_id="jpeg-to-gif",
            input_formats=("jpeg-2c",),
            output_formats=("gif-2c",),
            cost=0.5,
            description="JPEG to GIF container conversion",
        ),
    ]
    placements = {"color-reduce": "proxy", "jpeg-to-gif": "gateway"}
    if include_monolith:
        services.append(
            ServiceDescriptor(
                service_id="jpeg256-to-gif2",
                input_formats=("jpeg-256c",),
                output_formats=("gif-2c",),
                output_caps={COLOR_DEPTH: 1.0},
                cost=3.0,
                description="monolithic single-stage converter",
            )
        )
        placements["jpeg256-to-gif2"] = "proxy"

    catalog = ServiceCatalog(services)
    placement = ServicePlacement(topology, placements)

    parameters = ParameterSet(
        [
            Parameter(
                RESOLUTION,
                "pixels",
                DiscreteDomain(
                    [_PHOTO_PIXELS / 16.0, _PHOTO_PIXELS / 4.0, _PHOTO_PIXELS]
                ),
            ),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([1.0, 4.0, 8.0])),
        ]
    )
    content = ContentProfile(
        content_id="product-photo",
        variants=[
            ContentVariant(
                format=registry.get("jpeg-256c"),
                configuration=Configuration(
                    {RESOLUTION: _PHOTO_PIXELS, COLOR_DEPTH: 8.0}
                ),
                title="256-color product photo",
            )
        ],
    )
    device = DeviceProfile(
        device_id="eink-badge",
        decoders=["gif-2c"],
        max_color_depth=1.0,
        max_resolution=_PHOTO_PIXELS / 4.0,
        cpu_mips=10.0,
        memory_mb=4.0,
    )
    # The badge's owner only cares about legibility (resolution); depth is
    # forced to 1 bit by the hardware anyway.
    user = UserProfile(
        user_id="badge-owner",
        satisfaction_functions={
            RESOLUTION: PiecewiseLinearSatisfaction(
                [
                    (_PHOTO_PIXELS / 16.0, 0.0),
                    (_PHOTO_PIXELS / 4.0, 1.0),
                ]
            )
        },
        budget=2.0,  # the monolith (cost 3.0) is out of budget on purpose
    )
    return Scenario(
        name="jpeg-to-gif",
        registry=registry,
        parameters=parameters,
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=content,
        device=device,
        user=user,
        sender_node="webserver",
        receiver_node="badge",
        description="Section 1's two-stage JPEG->GIF composition example",
    )


def html_to_wml_scenario() -> Scenario:
    """The HTML → WML page-adaptation example from the introduction.

    A news page stored as HTML must reach a WAP phone that renders only
    WML.  Two chains exist: a direct ``html-to-wml`` converter, and a
    two-stage path through ``table-to-text`` (the paper's "conversion of
    HTML tables to plain text") followed by ``text-to-wml``.  The direct
    converter produces richer pages (higher effective resolution), so the
    algorithm prefers it while it is affordable.
    """
    registry = FormatRegistry()
    registry.define("html", MediaType.TEXT, codec="html")
    registry.define("plain-text", MediaType.TEXT, codec="txt")
    registry.define("wml", MediaType.TEXT, codec="wml")

    topology = NetworkTopology()
    topology.node("webserver")
    topology.node("wap-gateway")
    topology.node("phone", cpu_mips=50.0, memory_mb=16.0)
    topology.link("webserver", "wap-gateway", 2e6, delay_ms=8.0)
    topology.link("wap-gateway", "phone", 9600.0, delay_ms=120.0)  # GSM data

    # "Resolution" models page richness in rendered characters.
    page_chars = 4000.0
    catalog = ServiceCatalog(
        [
            ServiceDescriptor(
                service_id="html-to-wml",
                input_formats=("html",),
                output_formats=("wml",),
                cost=1.0,
                description="direct HTML to WML conversion",
            ),
            ServiceDescriptor(
                service_id="table-to-text",
                input_formats=("html",),
                output_formats=("plain-text",),
                output_caps={RESOLUTION: page_chars / 4.0},
                cost=0.2,
                description="strip markup, tables to plain text",
            ),
            ServiceDescriptor(
                service_id="text-to-wml",
                input_formats=("plain-text",),
                output_formats=("wml",),
                cost=0.2,
                description="wrap plain text as WML cards",
            ),
        ]
    )
    placement = ServicePlacement(
        topology,
        {
            "html-to-wml": "wap-gateway",
            "table-to-text": "wap-gateway",
            "text-to-wml": "wap-gateway",
        },
    )
    parameters = ParameterSet(
        [
            Parameter(RESOLUTION, "chars", ContinuousDomain(0.0, page_chars)),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([1.0])),
        ]
    )
    content = ContentProfile(
        content_id="news-page",
        variants=[
            ContentVariant(
                format=registry.get("html"),
                configuration=Configuration(
                    {RESOLUTION: page_chars, COLOR_DEPTH: 1.0}
                ),
                title="front page",
            )
        ],
    )
    device = DeviceProfile(
        device_id="wap-phone",
        decoders=["wml"],
        cpu_mips=50.0,
        memory_mb=16.0,
    )
    user = UserProfile(
        user_id="commuting-reader",
        satisfaction_functions={
            RESOLUTION: StepSatisfaction(
                [(page_chars / 8.0, 0.3), (page_chars / 4.0, 0.7), (page_chars, 1.0)]
            )
        },
        budget=5.0,
    )
    return Scenario(
        name="html-to-wml",
        registry=registry,
        parameters=parameters,
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=content,
        device=device,
        user=user,
        sender_node="webserver",
        receiver_node="phone",
        description="Section 1's HTML->WML web adaptation example",
    )
