"""Scenario persistence: whole scenarios as JSON documents.

A :class:`~repro.workloads.scenario.Scenario` bundles everything a session
needs; being able to write one to disk and load it back makes experiments
shareable (and lets the CLI export/import them).  The document composes the
existing serializers — profiles (:mod:`repro.profiles.serialization`),
service descriptors, the network profile for the topology — plus format
and parameter tables defined here.

``scenario_to_dict`` / ``scenario_from_dict`` round-trip through plain
JSON-compatible structures; ``save_scenario`` / ``load_scenario`` add the
file layer.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Mapping, Union

from repro.core.parameters import (
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.errors import ValidationError
from repro.formats.format import MediaFormat, MediaType
from repro.formats.registry import FormatRegistry
from repro.network.placement import ServicePlacement
from repro.policy.serialization import policy_from_dict, policy_to_dict
from repro.profiles.network import NetworkProfile
from repro.profiles.serialization import (
    descriptor_from_dict,
    descriptor_to_dict,
    profile_from_dict,
    profile_to_dict,
)
from repro.services.catalog import ServiceCatalog
from repro.workloads.scenario import Scenario

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
]


# ----------------------------------------------------------------------
# Formats
# ----------------------------------------------------------------------

def _format_to_dict(fmt: MediaFormat) -> Dict[str, Any]:
    return {
        "name": fmt.name,
        "media_type": fmt.media_type.value,
        "codec": fmt.codec,
        "container": fmt.container,
        "compression_ratio": fmt.compression_ratio,
    }


def _format_from_dict(data: Mapping[str, Any]) -> MediaFormat:
    return MediaFormat(
        name=data["name"],
        media_type=MediaType(data.get("media_type", "video")),
        codec=data.get("codec", ""),
        container=data.get("container"),
        compression_ratio=data.get("compression_ratio", 1.0),
    )


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------

def _parameter_to_dict(parameter: Parameter) -> Dict[str, Any]:
    domain = parameter.domain
    if isinstance(domain, ContinuousDomain):
        domain_data: Dict[str, Any] = {
            "kind": "continuous",
            "low": domain.low,
            "high": domain.high,
        }
    elif isinstance(domain, DiscreteDomain):
        domain_data = {"kind": "discrete", "values": list(domain.values)}
    else:  # pragma: no cover - no other domain kinds exist
        raise ValidationError(f"unknown domain type {type(domain).__name__}")
    return {
        "name": parameter.name,
        "unit": parameter.unit,
        "description": parameter.description,
        "domain": domain_data,
    }


def _parameter_from_dict(data: Mapping[str, Any]) -> Parameter:
    domain_data = data["domain"]
    kind = domain_data.get("kind")
    if kind == "continuous":
        domain = ContinuousDomain(domain_data["low"], domain_data["high"])
    elif kind == "discrete":
        domain = DiscreteDomain(domain_data["values"])
    else:
        raise ValidationError(f"unknown domain kind {kind!r}")
    return Parameter(
        name=data["name"],
        unit=data.get("unit", ""),
        domain=domain,
        description=data.get("description", ""),
    )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------

def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Serialize a full scenario to a JSON-compatible dictionary."""
    return {
        "document": "repro-scenario",
        "version": 1,
        "name": scenario.name,
        "description": scenario.description,
        "sender_node": scenario.sender_node,
        "receiver_node": scenario.receiver_node,
        "formats": [_format_to_dict(fmt) for fmt in scenario.registry],
        "parameters": [_parameter_to_dict(p) for p in scenario.parameters],
        "services": [descriptor_to_dict(d) for d in scenario.catalog],
        "placement": scenario.placement.as_dict(),
        "network": profile_to_dict(NetworkProfile.from_topology(scenario.topology)),
        "content": profile_to_dict(scenario.content),
        "device": profile_to_dict(scenario.device),
        "user": profile_to_dict(scenario.user),
        "context": (
            profile_to_dict(scenario.context) if scenario.context is not None else None
        ),
        "policy": (
            policy_to_dict(scenario.policy) if scenario.policy is not None else None
        ),
    }


def scenario_from_dict(data: Mapping[str, Any]) -> Scenario:
    """Inverse of :func:`scenario_to_dict`."""
    if data.get("document") != "repro-scenario":
        raise ValidationError("not a repro scenario document")
    if data.get("version") != 1:
        raise ValidationError(f"unsupported scenario version {data.get('version')!r}")
    registry = FormatRegistry(
        _format_from_dict(fmt_data) for fmt_data in data["formats"]
    )
    parameters = ParameterSet(
        _parameter_from_dict(p) for p in data["parameters"]
    )
    catalog = ServiceCatalog(
        descriptor_from_dict(d) for d in data["services"]
    )
    network: NetworkProfile = profile_from_dict(data["network"])
    topology = network.to_topology()
    placement = ServicePlacement(topology, data["placement"])
    context_data = data.get("context")
    policy_data = data.get("policy")
    return Scenario(
        name=data["name"],
        registry=registry,
        parameters=parameters,
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=profile_from_dict(data["content"], registry),
        device=profile_from_dict(data["device"]),
        user=profile_from_dict(data["user"]),
        sender_node=data["sender_node"],
        receiver_node=data["receiver_node"],
        context=(
            profile_from_dict(context_data) if context_data is not None else None
        ),
        description=data.get("description", ""),
        policy=(
            policy_from_dict(policy_data) if policy_data is not None else None
        ),
    )


def save_scenario(scenario: Scenario, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a scenario to a JSON file; returns the path."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(scenario_to_dict(scenario), indent=2) + "\n")
    return target


def load_scenario(path: Union[str, pathlib.Path]) -> Scenario:
    """Read a scenario back from a JSON file."""
    source = pathlib.Path(path)
    try:
        data = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"malformed scenario file {source}: {exc}") from exc
    return scenario_from_dict(data)
