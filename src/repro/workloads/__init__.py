"""Workloads: the paper's exact scenarios plus synthetic generators.

- :mod:`repro.workloads.paper` — faithful reconstructions of every figure
  and table in the paper: the Figure 1 satisfaction function, the Figure
  2/3 construction example, and the Figure 6 graph whose selection trace
  reproduces Table 1 cell by cell;
- :mod:`repro.workloads.synthetic` — seeded random scenario generation for
  the scalability, ablation, and property-based experiments.

Both produce :class:`~repro.workloads.scenario.Scenario` bundles that plug
straight into :class:`~repro.runtime.session.AdaptationSession`.
"""

from repro.workloads.scenario import Scenario
from repro.workloads.paper import (
    figure1_satisfaction,
    figure2_service,
    figure3_scenario,
    figure6_scenario,
    table1_expected_rows,
)
from repro.workloads.intro import html_to_wml_scenario, jpeg_to_gif_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

__all__ = [
    "Scenario",
    "figure1_satisfaction",
    "figure2_service",
    "figure3_scenario",
    "figure6_scenario",
    "table1_expected_rows",
    "jpeg_to_gif_scenario",
    "html_to_wml_scenario",
    "SyntheticConfig",
    "generate_scenario",
]
