"""Admission control: many sessions sharing one infrastructure.

One content provider, one proxy infrastructure, many concurrent clients —
the proxy-based deployment the paper advocates ("scaling properly with the
number of clients", Section 2).  The :class:`AdmissionController`

1. plans each arriving session against the *residual* topology (what
   earlier admissions left over, via
   :class:`~repro.network.reservations.BandwidthLedger`);
2. admits the session iff a chain exists and its satisfaction clears the
   operator's floor, reserving the chain's bandwidth hop by hop;
3. releases everything on teardown.

Admission order matters (earlier sessions see more capacity) — exactly the
behaviour the E16 bench charts.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.graph import AdaptationGraphBuilder
from repro.core.selection import QoSPathSelector, SelectionResult
from repro.errors import ValidationError
from repro.formats.registry import FormatRegistry
from repro.core.parameters import ParameterSet
from repro.network.placement import ServicePlacement
from repro.network.reservations import BandwidthLedger, Reservation
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.services.catalog import ServiceCatalog

__all__ = ["AdmittedSession", "AdmissionController"]


@dataclass(frozen=True)
class AdmittedSession:
    """One live session: its plan plus the reservations backing it."""

    session_id: int
    result: SelectionResult
    reservations: Tuple[Reservation, ...]

    @property
    def satisfaction(self) -> float:
        return self.result.satisfaction


class AdmissionController:
    """Admits sessions one by one against shared infrastructure."""

    def __init__(
        self,
        registry: FormatRegistry,
        parameters: ParameterSet,
        catalog: ServiceCatalog,
        placement: ServicePlacement,
        min_satisfaction: float = 0.0,
        cache=None,
    ) -> None:
        if not 0.0 <= min_satisfaction <= 1.0:
            raise ValidationError("min_satisfaction must lie in [0, 1]")
        self._registry = registry
        self._parameters = parameters
        self._catalog = catalog
        self._base_placement = placement
        self._ledger = BandwidthLedger(placement.topology)
        self._min_satisfaction = min_satisfaction
        self._cache = cache
        self._sessions: Dict[int, AdmittedSession] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    @property
    def ledger(self) -> BandwidthLedger:
        return self._ledger

    def active_sessions(self) -> List[AdmittedSession]:
        with self._lock:
            return list(self._sessions.values())

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        content: ContentProfile,
        device: DeviceProfile,
        user: UserProfile,
        sender_node: str,
        receiver_node: str,
    ) -> Optional[AdmittedSession]:
        """Plan and admit one session, or return ``None`` on rejection.

        Rejection reasons: no feasible chain in the residual topology, or
        the achievable satisfaction falls below the operator's floor.
        Admission reserves the stream's bandwidth on every link of every
        hop's route; rejection reserves nothing.

        When the controller carries a plan cache, the planning phase is
        memoized under a fingerprint that embeds the ledger generation:
        identical requests against an unchanged reservation table reuse
        the cached selection, and any reserve/release in between forces a
        recompute against fresh residuals.
        """
        residual = self._ledger.residual_topology()
        placement = ServicePlacement(residual, self._base_placement.as_dict())

        def compute() -> SelectionResult:
            graph = AdaptationGraphBuilder(self._catalog, placement).build(
                content=content,
                device=device,
                sender_node=sender_node,
                receiver_node=receiver_node,
            )
            return QoSPathSelector.for_user(
                graph,
                self._registry,
                self._parameters,
                user,
                record_trace=False,
            ).run()

        if self._cache is None:
            result = compute()
        else:
            # Imported lazily: repro.planner.batch imports runtime modules.
            from repro.planner.fingerprint import fingerprint_request

            fingerprint = fingerprint_request(
                user=user,
                content=content,
                device=device,
                sender_node=sender_node,
                receiver_node=receiver_node,
                catalog=self._catalog,
                placement=self._base_placement,
                ledger=self._ledger,
                record_trace=False,
            )
            result = self._cache.get_or_compute(fingerprint, compute)
        if not result.success:
            return None
        if result.satisfaction < self._min_satisfaction:
            return None

        reservations = self._reserve_chain(
            result, placement, sender_node, receiver_node
        )
        if reservations is None:
            return None
        with self._lock:
            session = AdmittedSession(
                session_id=next(self._ids),
                result=result,
                reservations=tuple(reservations),
            )
            self._sessions[session.session_id] = session
        return session

    def _reserve_chain(
        self,
        result: SelectionResult,
        placement: ServicePlacement,
        sender_node: str,
        receiver_node: str,
    ) -> Optional[List[Reservation]]:
        """Reserve each hop's bandwidth along its residual-widest route.

        The plan was computed against the residual topology, so each hop's
        requirement fits its route; reservation failures can still occur
        when two hops of the *same* chain share a link — in that case the
        partial reservations are rolled back and the session rejected.
        """
        config = result.configuration
        assert config is not None  # guaranteed by result.success
        taken: List[Reservation] = []
        for source, target, fmt_name in zip(
            result.path, result.path[1:], result.formats
        ):
            source_node = self._node_for(source, placement, sender_node, receiver_node)
            target_node = self._node_for(target, placement, sender_node, receiver_node)
            if source_node == target_node:
                route: List[str] = [source_node]
            else:
                found = self._ledger_route(source_node, target_node, taken)
                if found is None:
                    for reservation in taken:
                        self._ledger.release(reservation)
                    return None
                route = found
            requirement = config.required_bandwidth(self._registry.get(fmt_name))
            try:
                taken.append(
                    self._ledger.reserve(
                        route, requirement, label=f"{source}->{target}"
                    )
                )
            except ValidationError:
                for reservation in taken:
                    self._ledger.release(reservation)
                return None
        return taken

    def _ledger_route(
        self,
        source_node: str,
        target_node: str,
        taken: List[Reservation],
    ) -> Optional[List[str]]:
        """Widest route over what is left *right now* (mid-admission)."""
        return self._ledger.residual_topology().widest_path(
            source_node, target_node
        )

    @staticmethod
    def _node_for(
        service_id: str,
        placement: ServicePlacement,
        sender_node: str,
        receiver_node: str,
    ) -> str:
        # The endpoints are per-session (not in the shared placement).
        if service_id == "sender":
            return sender_node
        if service_id == "receiver":
            return receiver_node
        return placement.node_of(service_id)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def teardown(self, session_id: int) -> None:
        """Release a session's reservations."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ValidationError(f"no active session {session_id}")
        for reservation in session.reservations:
            self._ledger.release(reservation)

    def teardown_all(self) -> int:
        """Release everything; returns how many sessions ended."""
        with self._lock:
            session_ids = list(self._sessions)
        for session_id in session_ids:
            self.teardown(session_id)
        return len(session_ids)
