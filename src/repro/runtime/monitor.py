"""Network monitoring: producing the Section-3 network profile.

The paper's network profile "requires collecting information about the
available resources in the network" — someone has to do the collecting.
:class:`NetworkMonitor` plays that role over the simulated substrate: it
samples every link's instantaneous bandwidth through a
:class:`~repro.network.bandwidth.BandwidthEstimator` (i.e. under whatever
fluctuation model is active), maintains smoothed estimates, and can emit a
:class:`~repro.profiles.network.NetworkProfile` snapshot at any time — the
document graph construction and re-planning consume.

Smoothing uses an exponential moving average (per link), the standard
conservative estimator for control loops: spikes decay instead of
whipsawing the planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.network.bandwidth import BandwidthEstimator
from repro.network.topology import NetworkTopology
from repro.profiles.network import LinkMeasurement, NetworkProfile

__all__ = ["LinkEstimate", "NetworkMonitor"]


def _canonical(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class LinkEstimate:
    """Smoothed view of one link at the last sampling instant."""

    a: str
    b: str
    smoothed_bps: float
    last_sample_bps: float
    samples: int

    @property
    def endpoints(self) -> Tuple[str, str]:
        return _canonical(self.a, self.b)


class NetworkMonitor:
    """Samples link bandwidths and maintains smoothed estimates."""

    def __init__(
        self,
        estimator: BandwidthEstimator,
        smoothing: float = 0.3,
    ) -> None:
        """``smoothing`` is the EMA weight of the newest sample in (0, 1]:
        1.0 tracks instantaneously, small values react slowly."""
        if not 0.0 < smoothing <= 1.0:
            raise ValidationError("smoothing must lie in (0, 1]")
        self._estimator = estimator
        self._smoothing = smoothing
        self._estimates: Dict[Tuple[str, str], LinkEstimate] = {}
        self._last_sample_time: Optional[float] = None

    @property
    def topology(self) -> NetworkTopology:
        return self._estimator.topology

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, time_s: float) -> List[LinkEstimate]:
        """Measure every link at ``time_s`` and fold into the EMAs.

        Sampling must move forward in time (monitors do not time-travel).
        Returns the updated estimates.
        """
        if self._last_sample_time is not None and time_s < self._last_sample_time:
            raise ValidationError(
                f"sample time {time_s} precedes last sample "
                f"({self._last_sample_time})"
            )
        self._last_sample_time = time_s
        for link in self.topology.links():
            observed = self._estimator.link_bandwidth(link.a, link.b, time_s)
            key = _canonical(link.a, link.b)
            previous = self._estimates.get(key)
            if previous is None:
                smoothed = observed
                count = 1
            else:
                smoothed = (
                    self._smoothing * observed
                    + (1.0 - self._smoothing) * previous.smoothed_bps
                )
                count = previous.samples + 1
            self._estimates[key] = LinkEstimate(
                a=key[0],
                b=key[1],
                smoothed_bps=smoothed,
                last_sample_bps=observed,
                samples=count,
            )
        return self.estimates()

    def sample_window(
        self, start_s: float, end_s: float, interval_s: float = 1.0
    ) -> int:
        """Sample repeatedly over a window; returns the sample count."""
        if interval_s <= 0:
            raise ValidationError("interval must be positive")
        count = 0
        time_s = start_s
        while time_s <= end_s + 1e-9:
            self.sample(time_s)
            count += 1
            time_s += interval_s
        return count

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def estimates(self) -> List[LinkEstimate]:
        return list(self._estimates.values())

    def estimate_for(self, a: str, b: str) -> Optional[LinkEstimate]:
        return self._estimates.get(_canonical(a, b))

    def network_profile(self) -> NetworkProfile:
        """The Section-3 network profile from the smoothed estimates.

        Links never sampled report their nominal capacity (the monitor has
        no evidence against it).  Delay/loss/cost pass through from the
        topology — this monitor measures bandwidth only.
        """
        measurements = []
        for link in self.topology.links():
            estimate = self.estimate_for(link.a, link.b)
            throughput = (
                estimate.smoothed_bps if estimate is not None else link.bandwidth_bps
            )
            measurements.append(
                LinkMeasurement(
                    a=link.a,
                    b=link.b,
                    throughput_bps=throughput,
                    delay_ms=link.delay_ms,
                    loss_rate=link.loss_rate,
                    cost=link.cost,
                )
            )
        resources = {
            node.node_id: (node.cpu_mips, node.memory_mb)
            for node in self.topology.nodes()
        }
        return NetworkProfile(measurements, resources)

    def measured_topology(self) -> NetworkTopology:
        """A topology built from the monitored profile — hand this to the
        graph builder to plan against *measured* (not nominal) capacity."""
        return self.network_profile().to_topology()
