"""Adaptation sessions: the whole framework in one call.

An :class:`AdaptationSession` wires the paper's full pipeline together:

1. take the six profiles (user, content, context, device, network — via
   the topology — and the intermediaries — via catalog + placement);
2. construct the adaptation graph (Section 4.2);
3. prune it (Section 4's optimization pass);
4. run the QoS path-selection algorithm (Section 4.4);
5. optionally stream the selected chain and report delivery metrics.

This is the class downstream users touch first; the examples are built on
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.graph import AdaptationGraph, AdaptationGraphBuilder
from repro.core.parameters import ParameterSet
from repro.core.pruning import GraphPruner, PruningReport
from repro.core.selection import (
    QoSPathSelector,
    SelectionResult,
    TieBreakPolicy,
    build_chain,
)
from repro.errors import NoPathError
from repro.formats.registry import FormatRegistry
from repro.network.bandwidth import BandwidthEstimator, FluctuationModel
from repro.network.placement import ServicePlacement
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.runtime.events import EventLog
from repro.runtime.metrics import DeliveryReport
from repro.runtime.pipeline import DeliveryPipeline
from repro.services.catalog import ServiceCatalog
from repro.services.chains import AdaptationChain

__all__ = ["SessionPlan", "AdaptationSession"]


@dataclass(frozen=True)
class SessionPlan:
    """Everything the planning phase produced."""

    graph: AdaptationGraph
    pruning: PruningReport
    result: SelectionResult

    @property
    def success(self) -> bool:
        return self.result.success

    def chain(self) -> AdaptationChain:
        """The selected chain as an executable object (success only)."""
        return build_chain(self.graph, self.result)


class AdaptationSession:
    """One content-delivery session for one user on one device."""

    def __init__(
        self,
        registry: FormatRegistry,
        parameters: ParameterSet,
        catalog: ServiceCatalog,
        placement: ServicePlacement,
        content: ContentProfile,
        device: DeviceProfile,
        user: UserProfile,
        sender_node: str,
        receiver_node: str,
        context: Optional[ContextProfile] = None,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        prune: bool = True,
        record_trace: bool = True,
        optimize_memo=None,
    ) -> None:
        self._registry = registry
        self._parameters = parameters
        self._catalog = catalog
        self._placement = placement
        self._content = content
        self._device = device
        self._user = user
        self._context = context
        self._sender_node = sender_node
        self._receiver_node = receiver_node
        self._tie_break = tie_break
        self._prune = prune
        self._record_trace = record_trace
        #: Optional shared :class:`~repro.core.optimizer.OptimizeMemo`;
        #: lets a batch planner reuse solved relaxations across sessions.
        self._optimize_memo = optimize_memo

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        peer: Optional[str] = None,
        cache=None,
        ledger=None,
    ) -> SessionPlan:
        """Run graph construction, pruning, and path selection.

        Pass a :class:`~repro.planner.cache.PlanCache` to memoize the
        plan under its canonical fingerprint; repeated calls with the
        same profiles against an unchanged catalog / topology /
        placement (and ledger, when given) return the cached plan.
        """
        if cache is None:
            return self._plan_fresh(peer)
        # Imported lazily: repro.planner.batch imports this module.
        from repro.planner.fingerprint import fingerprint_request

        fingerprint = fingerprint_request(
            user=self._user,
            content=self._content,
            device=self._device,
            sender_node=self._sender_node,
            receiver_node=self._receiver_node,
            catalog=self._catalog,
            placement=self._placement,
            context=self._context,
            ledger=ledger,
            peer=peer,
            tie_break=self._tie_break,
            prune=self._prune,
            record_trace=self._record_trace,
        )
        return cache.get_or_compute(fingerprint, lambda: self._plan_fresh(peer))

    def _plan_fresh(self, peer: Optional[str] = None) -> SessionPlan:
        builder = AdaptationGraphBuilder(self._catalog, self._placement)
        graph = builder.build(
            content=self._content,
            device=self._device,
            sender_node=self._sender_node,
            receiver_node=self._receiver_node,
            context_caps=(
                self._context.parameter_caps() if self._context is not None else None
            ),
        )
        if self._prune:
            graph, report = GraphPruner().prune(graph)
        else:
            report = PruningReport(
                vertices_before=len(graph),
                vertices_after=len(graph),
                edges_before=graph.edge_count(),
                edges_after=graph.edge_count(),
            )
        selector = QoSPathSelector.for_user(
            graph=graph,
            registry=self._registry,
            parameters=self._parameters,
            user=self._user,
            peer=peer,
            tie_break=self._tie_break,
            record_trace=self._record_trace,
            optimize_memo=self._optimize_memo,
        )
        result = selector.run()
        return SessionPlan(graph=graph, pruning=report, result=result)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def deliver(
        self,
        plan: SessionPlan,
        duration_s: float = 30.0,
        fluctuation: Optional[FluctuationModel] = None,
        seed: int = 0,
        events: Optional[EventLog] = None,
    ) -> DeliveryReport:
        """Stream the planned chain and report what the receiver saw."""
        if not plan.success:
            raise NoPathError(plan.result.failure_reason)
        chain = plan.chain()
        # Endpoints participate in routing, so they need host assignments.
        placement = self._placement
        if not placement.is_placed(plan.graph.sender_id):
            placement.place(plan.graph.sender_id, self._sender_node)
        if not placement.is_placed(plan.graph.receiver_id):
            placement.place(plan.graph.receiver_id, self._receiver_node)
        estimator = BandwidthEstimator(placement.topology, fluctuation)
        pipeline = DeliveryPipeline(
            placement=placement,
            registry=self._registry,
            estimator=estimator,
            seed=seed,
        )
        satisfaction = self._user.satisfaction()
        configuration = plan.result.configuration
        if configuration is None:
            raise NoPathError("plan carries no delivered configuration")

        def satisfaction_of(config) -> float:
            values = []
            for name in satisfaction.parameter_names():
                if name in config:
                    values.append(satisfaction.individual(name, config[name]))
            return satisfaction.combiner(values) if values else 0.0

        return pipeline.stream(
            chain=chain,
            configuration=configuration,
            satisfaction_of=satisfaction_of,
            duration_s=duration_s,
            events=events,
        )

    def plan_and_deliver(
        self,
        duration_s: float = 30.0,
        fluctuation: Optional[FluctuationModel] = None,
        seed: int = 0,
    ) -> DeliveryReport:
        """Convenience: plan, then deliver, in one call."""
        return self.deliver(self.plan(), duration_s, fluctuation, seed)
