"""The delivery pipeline: streaming a selected chain over the substrate.

Given the chain the selector picked and the configuration it promised, the
pipeline simulates the stream second by second:

- **startup latency** — first-frame transmission plus propagation along
  each hop's routed network path, plus per-service processing time (CPU
  demand over host capacity);
- **sustained delivery** — each second, the deliverable frame count is the
  planned frame rate capped by every hop's instantaneous bandwidth (the
  fluctuation model can dip below the planning-time snapshot), then thinned
  by end-to-end loss;
- **accounting** — money (service costs + per-hop transmission costs) and
  CPU work.

The model deliberately streams every hop at the *final* configuration's
parameter values (in that hop's format): the planning-time optimizer already
established that richer upstream quality fits the upstream links, so this
is the conservative bandwidth choice.  All randomness (loss) is seeded.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

from repro.core.configuration import Configuration
from repro.core.parameters import FRAME_RATE
from repro.errors import PipelineError
from repro.formats.registry import FormatRegistry
from repro.network.bandwidth import BandwidthEstimator
from repro.network.placement import ServicePlacement
from repro.runtime.events import EventLog
from repro.runtime.metrics import DeliveryReport
from repro.services.chains import AdaptationChain
from repro.services.descriptor import ServiceKind

__all__ = ["DeliveryPipeline"]


class DeliveryPipeline:
    """Simulates streaming one adaptation chain."""

    def __init__(
        self,
        placement: ServicePlacement,
        registry: FormatRegistry,
        estimator: Optional[BandwidthEstimator] = None,
        seed: int = 0,
    ) -> None:
        self._placement = placement
        self._registry = registry
        self._estimator = (
            estimator
            if estimator is not None
            else BandwidthEstimator(placement.topology)
        )
        self._seed = seed

    def stream(
        self,
        chain: AdaptationChain,
        configuration: Configuration,
        satisfaction_of: Callable[[Configuration], float],
        duration_s: float = 30.0,
        events: Optional[EventLog] = None,
    ) -> DeliveryReport:
        """Stream ``duration_s`` seconds of content through ``chain``."""
        if duration_s <= 0:
            raise PipelineError("duration must be positive")
        hops = self._hop_plan(chain, configuration)
        frame_rate = configuration.get_value(FRAME_RATE, 0.0) or 0.0
        log = events if events is not None else EventLog()
        rng = random.Random(self._seed)

        startup = self._startup_latency(hops, frame_rate)
        log.record(0.0, "pipeline", f"chain {chain} starting, planned {frame_rate:g} fps")
        log.record(startup, "pipeline", f"first frame delivered after {startup * 1000:.1f} ms")

        per_second: List[int] = []
        frames_sent = 0
        frames_delivered = 0
        whole_seconds = max(1, int(math.ceil(duration_s)))
        for second in range(whole_seconds):
            window = min(1.0, duration_s - second)
            target = frame_rate * window
            deliverable = target
            for hop in hops:
                capacity_fps = self._hop_capacity_fps(hop, float(second))
                deliverable = min(deliverable, capacity_fps * window)
            sent = int(round(target))
            survived = self._apply_loss(int(round(deliverable)), hops, rng)
            frames_sent += sent
            frames_delivered += survived
            per_second.append(survived)
            if survived < sent:
                log.record(
                    float(second + 1),
                    "degradation",
                    f"second {second}: {survived}/{sent} frames",
                )

        average = frames_delivered / duration_s
        jitter = self._stddev(per_second)
        total_cost = chain.total_cost() + sum(hop.transmission_cost for hop in hops)
        cpu_work = sum(hop.cpu_mips for hop in hops) * duration_s
        log.record(float(whole_seconds), "pipeline", "stream complete")

        return DeliveryReport(
            path=tuple(chain.service_ids()),
            configuration=configuration,
            satisfaction=satisfaction_of(configuration),
            startup_latency_s=startup,
            duration_s=duration_s,
            frames_sent=frames_sent,
            frames_delivered=frames_delivered,
            average_frame_rate=average,
            frame_rate_jitter=jitter,
            total_cost=total_cost,
            cpu_mips_seconds=cpu_work,
        )

    # ------------------------------------------------------------------
    # Hop planning
    # ------------------------------------------------------------------
    class _Hop:
        """Resolved per-hop transport facts."""

        __slots__ = (
            "source_node",
            "target_node",
            "route",
            "format_name",
            "frame_bits",
            "loss_rate",
            "delay_s",
            "transmission_cost",
            "cpu_mips",
        )

        def __init__(self, **kwargs) -> None:
            for name, value in kwargs.items():
                setattr(self, name, value)

    def _hop_plan(
        self, chain: AdaptationChain, configuration: Configuration
    ) -> List["_Hop"]:
        topology = self._placement.topology
        hops: List[DeliveryPipeline._Hop] = []
        sequence = list(chain)
        for upstream, downstream in zip(sequence, sequence[1:]):
            source_node = self._placement.node_of(upstream.service.service_id)
            target_node = self._placement.node_of(downstream.service.service_id)
            if source_node == target_node:
                route: List[str] = [source_node]
            else:
                route_or_none = topology.widest_path(source_node, target_node)
                if route_or_none is None:
                    raise PipelineError(
                        f"hosts {source_node!r} and {target_node!r} are "
                        f"disconnected; cannot stream hop into "
                        f"{downstream.service.service_id}"
                    )
                route = route_or_none
            fmt = self._registry.get(downstream.via_format)
            per_frame = configuration.with_value(FRAME_RATE, 1.0).required_bandwidth(fmt)
            cpu = 0.0
            if downstream.service.kind is ServiceKind.TRANSCODER:
                input_bps = configuration.required_bandwidth(fmt)
                host = topology.get_node(target_node)
                demand = downstream.service.cpu_required(input_bps)
                if demand > host.cpu_mips:
                    raise PipelineError(
                        f"{downstream.service.service_id} needs "
                        f"{demand:.1f} MIPS, host {target_node!r} has "
                        f"{host.cpu_mips:.1f}"
                    )
                cpu = demand
            hops.append(
                DeliveryPipeline._Hop(
                    source_node=source_node,
                    target_node=target_node,
                    route=route,
                    format_name=fmt.name,
                    frame_bits=per_frame,
                    loss_rate=topology.path_loss_rate(route),
                    delay_s=topology.path_delay_ms(route) / 1000.0,
                    transmission_cost=topology.path_cost(route),
                    cpu_mips=cpu,
                )
            )
        return hops

    # ------------------------------------------------------------------
    # Per-hop physics
    # ------------------------------------------------------------------
    def _hop_capacity_fps(self, hop: "_Hop", time_s: float) -> float:
        """Frames/second the hop can carry at ``time_s``."""
        if len(hop.route) < 2:
            return math.inf  # Co-located services: unlimited (Section 4.3).
        bandwidth = min(
            self._estimator.link_bandwidth(a, b, time_s)
            for a, b in zip(hop.route, hop.route[1:])
        )
        if hop.frame_bits <= 0:
            return math.inf
        return bandwidth / hop.frame_bits

    def _startup_latency(self, hops: List["_Hop"], frame_rate: float) -> float:
        """Propagation + first-frame serialization + processing, summed."""
        latency = 0.0
        for hop in hops:
            latency += hop.delay_s
            capacity = self._hop_capacity_fps(hop, 0.0)
            if capacity > 0 and not math.isinf(capacity):
                latency += 1.0 / capacity  # Serialize one frame.
            if hop.cpu_mips > 0 and frame_rate > 0:
                host = self._placement.topology.get_node(hop.target_node)
                # Fraction of a second of CPU per second of content, spread
                # over the frames of that second.
                latency += (hop.cpu_mips / host.cpu_mips) / frame_rate
        return latency

    @staticmethod
    def _apply_loss(frames: int, hops: List["_Hop"], rng: random.Random) -> int:
        """Thin a second's frames by each hop's loss rate (Bernoulli)."""
        survived = frames
        for hop in hops:
            if hop.loss_rate <= 0.0 or survived == 0:
                continue
            survived = sum(1 for _ in range(survived) if rng.random() >= hop.loss_rate)
        return survived

    @staticmethod
    def _stddev(values: List[int]) -> float:
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        return math.sqrt(variance)
