"""Delivery metrics: what the receiver actually experienced.

A :class:`DeliveryReport` aggregates one simulated streaming session: the
configuration delivered, the user's satisfaction with it, startup latency,
sustained throughput, frame statistics under loss and bandwidth
fluctuation, and the money spent.  Produced by
:class:`~repro.runtime.pipeline.DeliveryPipeline`; consumed by examples,
integration tests, and the E12 bench.

A :class:`PlannerReport` is the planning-side counterpart: one batch-plan
run's throughput plus the cache counters behind it.  Produced by the
``plan-batch`` CLI command and the batch-planner bench.

Every metrics producer in the repo — :class:`PlannerReport`, the
simulator's :class:`~repro.sim.report.SimReport`, and the serving
gateway's ``/metrics`` endpoint — exports through one envelope,
:func:`metrics_document`: a schema-version field, a section name, and the
payload with keys sorted recursively, so downstream scrapers parse one
stable JSON shape instead of three ad-hoc dicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.errors import ValidationError

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "metrics_document",
    "metrics_json",
    "Histogram",
    "merge_histogram_dicts",
    "DeliveryReport",
    "PlannerReport",
]

#: Version tag stamped on every exported metrics document.  Bump only on
#: incompatible shape changes; adding keys is backward compatible.
METRICS_SCHEMA_VERSION = "repro.metrics/1"


def _sorted_payload(value: Any) -> Any:
    """Recursively sort mapping keys so serialization order is canonical."""
    if isinstance(value, Mapping):
        return {key: _sorted_payload(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_sorted_payload(item) for item in value]
    return value


def metrics_document(section: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Wrap a metrics payload in the repo-wide export envelope.

    The result is JSON-ready: ``schema`` identifies the envelope version,
    ``section`` names the producer (``"planner"``, ``"sim"``,
    ``"gateway"``), and ``metrics`` holds the payload with keys sorted
    recursively.
    """
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "section": section,
        "metrics": _sorted_payload(payload),
    }


def metrics_json(section: str, payload: Mapping[str, Any]) -> str:
    """:func:`metrics_document` rendered as canonical (sorted-key) JSON."""
    return json.dumps(metrics_document(section, payload), indent=2, sort_keys=True)


class Histogram:
    """A fixed-bucket histogram with an implicit overflow bucket.

    This is the latency/satisfaction histogram behind the gateway's
    ``/metrics`` endpoint and the cluster supervisor's merged view.  It
    lives here (not in :mod:`repro.serve`) because merging exported
    histograms is a metrics-envelope concern: the supervisor aggregates
    worker documents it received as JSON, so :meth:`from_dict` /
    :meth:`merge` must round-trip exactly through :meth:`to_dict`.

    ``merge`` is associative and bucket-exact: merging histograms with
    identical bounds sums counts per bucket (including overflow), the
    observation count, and the running sum — merging any partition of an
    observation stream therefore reproduces the histogram of the whole
    stream bit-for-bit, regardless of how the stream was split or the
    order the parts were merged in.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValidationError("histogram bounds must be sorted and non-empty")
        self._bounds = tuple(float(b) for b in bounds)
        self._counts: List[int] = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                self._counts[i] += 1
                break
        else:
            self._counts[-1] += 1
        self._count += 1
        self._sum += value

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile (0 < q <= 1).

        Overflow observations report the last finite bound — a floor on
        the true value, which is the conservative direction for "p99 under
        deadline" style assertions by consumers that know the bounds.
        """
        if not 0.0 < q <= 1.0:
            raise ValidationError("quantile must lie in (0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        for i, bound in enumerate(self._bounds):
            cumulative += self._counts[i]
            if cumulative >= target:
                return bound
        return self._bounds[-1]

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both operands' observations.

        Bucket-exact: the operands must carry *identical* bounds —
        rebucketing would silently corrupt quantiles, so a mismatch is a
        :class:`~repro.errors.ValidationError`, never an approximation.
        """
        if not isinstance(other, Histogram):
            raise ValidationError(
                f"cannot merge Histogram with {type(other).__name__}"
            )
        if self._bounds != other._bounds:
            raise ValidationError(
                f"histogram bounds differ: {self._bounds} vs {other._bounds}"
            )
        merged = Histogram(self._bounds)
        merged._counts = [
            a + b for a, b in zip(self._counts, other._counts)
        ]
        merged._count = self._count + other._count
        merged._sum = self._sum + other._sum
        return merged

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` export.

        This is how the cluster supervisor reconstitutes each worker's
        histograms from the JSON it fetched over the private metrics
        port; the parallel-array shape is validated strictly.
        """
        if not isinstance(data, Mapping):
            raise ValidationError("histogram document must be a mapping")
        bounds = data.get("bounds")
        counts = data.get("counts")
        if not isinstance(bounds, Sequence) or isinstance(bounds, (str, bytes)):
            raise ValidationError("histogram 'bounds' must be a sequence")
        if not isinstance(counts, Sequence) or isinstance(counts, (str, bytes)):
            raise ValidationError("histogram 'counts' must be a sequence")
        histogram = cls(bounds)
        if len(counts) != len(histogram._counts):
            raise ValidationError(
                f"histogram carries {len(counts)} buckets for "
                f"{len(bounds)} bounds (expected {len(bounds) + 1})"
            )
        for value in counts:
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValidationError(
                    f"histogram counts must be non-negative ints, got {value!r}"
                )
        histogram._counts = list(counts)
        total = data.get("count", sum(counts))
        if not isinstance(total, int) or total != sum(counts):
            raise ValidationError(
                f"histogram 'count' {total!r} disagrees with bucket sum "
                f"{sum(counts)}"
            )
        histogram._count = total
        raw_sum = data.get("sum", 0.0)
        if not isinstance(raw_sum, (int, float)) or isinstance(raw_sum, bool):
            raise ValidationError("histogram 'sum' must be a number")
        histogram._sum = float(raw_sum)
        return histogram

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self._bounds),
            "counts": list(self._counts),
            "count": self._count,
            "sum": round(self._sum, 6),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        # Bucket contents are exact; the running sum is float arithmetic,
        # where addition order matters in the last bits — compare it with
        # a relative tolerance.
        return (
            self._bounds == other._bounds
            and self._counts == other._counts
            and self._count == other._count
            and abs(self._sum - other._sum)
            <= 1e-9 * max(1.0, abs(self._sum), abs(other._sum))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(bounds={self._bounds}, count={self._count}, "
            f"sum={self._sum:.3f})"
        )


def merge_histogram_dicts(
    documents: Sequence[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Merge exported histogram dicts bucket-wise (for JSON aggregators).

    Accepts one or more :meth:`Histogram.to_dict` payloads with identical
    bounds and returns the merged export.  An empty sequence is a
    :class:`~repro.errors.ValidationError` — the caller must know the
    bounds to report an empty histogram.
    """
    if not documents:
        raise ValidationError("cannot merge zero histogram documents")
    merged = Histogram.from_dict(documents[0])
    for document in documents[1:]:
        merged = merged.merge(Histogram.from_dict(document))
    return merged.to_dict()


@dataclass(frozen=True)
class DeliveryReport:
    """Aggregate outcome of one streamed session."""

    #: Service ids along the executed chain, sender first.
    path: Tuple[str, ...]
    #: The configuration the receiver rendered.
    configuration: Configuration
    #: The user's satisfaction with that configuration (Equation 1).
    satisfaction: float
    #: Time until the first frame reached the receiver (seconds).
    startup_latency_s: float
    #: Total simulated stream duration (seconds).
    duration_s: float
    #: Frames handed to the chain by the sender.
    frames_sent: int
    #: Frames that survived loss and bandwidth dips to reach the receiver.
    frames_delivered: int
    #: Average delivered frame rate over the session (fps).
    average_frame_rate: float
    #: Standard deviation of per-second delivered frame counts (jitter
    #: proxy).
    frame_rate_jitter: float
    #: Money spent: service costs plus transmission costs.
    total_cost: float
    #: Aggregate CPU work performed by the transcoders (MIPS·seconds).
    cpu_mips_seconds: float

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent frames that never arrived."""
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_delivered / self.frames_sent

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"path:              {','.join(self.path)}",
            f"satisfaction:      {self.satisfaction:.4f}",
            f"delivered config:  {self.configuration!r}",
            f"startup latency:   {self.startup_latency_s * 1000:.1f} ms",
            f"avg frame rate:    {self.average_frame_rate:.2f} fps "
            f"(jitter {self.frame_rate_jitter:.2f})",
            f"frames:            {self.frames_delivered}/{self.frames_sent} "
            f"delivered ({self.loss_fraction * 100:.1f}% lost)",
            f"total cost:        {self.total_cost:.2f}",
            f"cpu work:          {self.cpu_mips_seconds:.1f} MIPS*s",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class PlannerReport:
    """Aggregate outcome of one batch-planning run."""

    #: Sessions planned in the batch.
    sessions: int
    #: Plans that came out feasible (selection succeeded).
    successes: int
    #: Cache lookups served from memory.
    cache_hits: int
    #: Cache lookups that had to compute.
    cache_misses: int
    #: Entries dropped because the infrastructure moved on.
    invalidations: int
    #: Entries dropped by the LRU bound.
    evictions: int
    #: Wall-clock time for the batch (seconds).
    elapsed_s: float
    #: Optimize() invocations across every planned session (0 when the
    #: planner did not report them).
    optimize_calls: int = 0
    #: Optimize() invocations served from the shared memo.
    optimize_memo_hits: int = 0
    #: Selector settle rounds summed over the batch's planned sessions.
    settle_rounds: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none ran)."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def optimize_memo_hit_rate(self) -> float:
        """Fraction of optimize() calls served from the memo."""
        if self.optimize_calls == 0:
            return 0.0
        return self.optimize_memo_hits / self.optimize_calls

    @property
    def throughput_per_s(self) -> float:
        """Sessions planned per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.sessions / self.elapsed_s

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"sessions:          {self.sessions} "
            f"({self.successes} feasible)",
            f"elapsed:           {self.elapsed_s * 1000:.1f} ms "
            f"({self.throughput_per_s:.0f} plans/s)",
            f"cache hits:        {self.cache_hits} "
            f"({self.hit_rate * 100:.1f}% hit rate)",
            f"cache misses:      {self.cache_misses}",
            f"invalidations:     {self.invalidations}",
            f"evictions:         {self.evictions}",
        ]
        if self.optimize_calls:
            lines.append(
                f"optimize calls:    {self.optimize_calls} "
                f"({self.optimize_memo_hit_rate * 100:.1f}% memoized)"
            )
        if self.settle_rounds:
            lines.append(f"settle rounds:     {self.settle_rounds}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """This report in the repo-wide metrics envelope."""
        return metrics_document(
            "planner",
            {
                "sessions": self.sessions,
                "successes": self.successes,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": self.hit_rate,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "elapsed_s": self.elapsed_s,
                "throughput_per_s": self.throughput_per_s,
                "optimize_calls": self.optimize_calls,
                "optimize_memo_hits": self.optimize_memo_hits,
                "optimize_memo_hit_rate": self.optimize_memo_hit_rate,
                "settle_rounds": self.settle_rounds,
            },
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
