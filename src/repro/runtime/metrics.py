"""Delivery metrics: what the receiver actually experienced.

A :class:`DeliveryReport` aggregates one simulated streaming session: the
configuration delivered, the user's satisfaction with it, startup latency,
sustained throughput, frame statistics under loss and bandwidth
fluctuation, and the money spent.  Produced by
:class:`~repro.runtime.pipeline.DeliveryPipeline`; consumed by examples,
integration tests, and the E12 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.configuration import Configuration

__all__ = ["DeliveryReport"]


@dataclass(frozen=True)
class DeliveryReport:
    """Aggregate outcome of one streamed session."""

    #: Service ids along the executed chain, sender first.
    path: Tuple[str, ...]
    #: The configuration the receiver rendered.
    configuration: Configuration
    #: The user's satisfaction with that configuration (Equation 1).
    satisfaction: float
    #: Time until the first frame reached the receiver (seconds).
    startup_latency_s: float
    #: Total simulated stream duration (seconds).
    duration_s: float
    #: Frames handed to the chain by the sender.
    frames_sent: int
    #: Frames that survived loss and bandwidth dips to reach the receiver.
    frames_delivered: int
    #: Average delivered frame rate over the session (fps).
    average_frame_rate: float
    #: Standard deviation of per-second delivered frame counts (jitter
    #: proxy).
    frame_rate_jitter: float
    #: Money spent: service costs plus transmission costs.
    total_cost: float
    #: Aggregate CPU work performed by the transcoders (MIPS·seconds).
    cpu_mips_seconds: float

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent frames that never arrived."""
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_delivered / self.frames_sent

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"path:              {','.join(self.path)}",
            f"satisfaction:      {self.satisfaction:.4f}",
            f"delivered config:  {self.configuration!r}",
            f"startup latency:   {self.startup_latency_s * 1000:.1f} ms",
            f"avg frame rate:    {self.average_frame_rate:.2f} fps "
            f"(jitter {self.frame_rate_jitter:.2f})",
            f"frames:            {self.frames_delivered}/{self.frames_sent} "
            f"delivered ({self.loss_fraction * 100:.1f}% lost)",
            f"total cost:        {self.total_cost:.2f}",
            f"cpu work:          {self.cpu_mips_seconds:.1f} MIPS*s",
        ]
        return "\n".join(lines)
