"""Delivery metrics: what the receiver actually experienced.

A :class:`DeliveryReport` aggregates one simulated streaming session: the
configuration delivered, the user's satisfaction with it, startup latency,
sustained throughput, frame statistics under loss and bandwidth
fluctuation, and the money spent.  Produced by
:class:`~repro.runtime.pipeline.DeliveryPipeline`; consumed by examples,
integration tests, and the E12 bench.

A :class:`PlannerReport` is the planning-side counterpart: one batch-plan
run's throughput plus the cache counters behind it.  Produced by the
``plan-batch`` CLI command and the batch-planner bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.configuration import Configuration

__all__ = ["DeliveryReport", "PlannerReport"]


@dataclass(frozen=True)
class DeliveryReport:
    """Aggregate outcome of one streamed session."""

    #: Service ids along the executed chain, sender first.
    path: Tuple[str, ...]
    #: The configuration the receiver rendered.
    configuration: Configuration
    #: The user's satisfaction with that configuration (Equation 1).
    satisfaction: float
    #: Time until the first frame reached the receiver (seconds).
    startup_latency_s: float
    #: Total simulated stream duration (seconds).
    duration_s: float
    #: Frames handed to the chain by the sender.
    frames_sent: int
    #: Frames that survived loss and bandwidth dips to reach the receiver.
    frames_delivered: int
    #: Average delivered frame rate over the session (fps).
    average_frame_rate: float
    #: Standard deviation of per-second delivered frame counts (jitter
    #: proxy).
    frame_rate_jitter: float
    #: Money spent: service costs plus transmission costs.
    total_cost: float
    #: Aggregate CPU work performed by the transcoders (MIPS·seconds).
    cpu_mips_seconds: float

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent frames that never arrived."""
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_delivered / self.frames_sent

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"path:              {','.join(self.path)}",
            f"satisfaction:      {self.satisfaction:.4f}",
            f"delivered config:  {self.configuration!r}",
            f"startup latency:   {self.startup_latency_s * 1000:.1f} ms",
            f"avg frame rate:    {self.average_frame_rate:.2f} fps "
            f"(jitter {self.frame_rate_jitter:.2f})",
            f"frames:            {self.frames_delivered}/{self.frames_sent} "
            f"delivered ({self.loss_fraction * 100:.1f}% lost)",
            f"total cost:        {self.total_cost:.2f}",
            f"cpu work:          {self.cpu_mips_seconds:.1f} MIPS*s",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class PlannerReport:
    """Aggregate outcome of one batch-planning run."""

    #: Sessions planned in the batch.
    sessions: int
    #: Plans that came out feasible (selection succeeded).
    successes: int
    #: Cache lookups served from memory.
    cache_hits: int
    #: Cache lookups that had to compute.
    cache_misses: int
    #: Entries dropped because the infrastructure moved on.
    invalidations: int
    #: Entries dropped by the LRU bound.
    evictions: int
    #: Wall-clock time for the batch (seconds).
    elapsed_s: float
    #: Optimize() invocations across every planned session (0 when the
    #: planner did not report them).
    optimize_calls: int = 0
    #: Optimize() invocations served from the shared memo.
    optimize_memo_hits: int = 0
    #: Selector settle rounds summed over the batch's planned sessions.
    settle_rounds: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none ran)."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def optimize_memo_hit_rate(self) -> float:
        """Fraction of optimize() calls served from the memo."""
        if self.optimize_calls == 0:
            return 0.0
        return self.optimize_memo_hits / self.optimize_calls

    @property
    def throughput_per_s(self) -> float:
        """Sessions planned per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.sessions / self.elapsed_s

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"sessions:          {self.sessions} "
            f"({self.successes} feasible)",
            f"elapsed:           {self.elapsed_s * 1000:.1f} ms "
            f"({self.throughput_per_s:.0f} plans/s)",
            f"cache hits:        {self.cache_hits} "
            f"({self.hit_rate * 100:.1f}% hit rate)",
            f"cache misses:      {self.cache_misses}",
            f"invalidations:     {self.invalidations}",
            f"evictions:         {self.evictions}",
        ]
        if self.optimize_calls:
            lines.append(
                f"optimize calls:    {self.optimize_calls} "
                f"({self.optimize_memo_hit_rate * 100:.1f}% memoized)"
            )
        if self.settle_rounds:
            lines.append(f"settle rounds:     {self.settle_rounds}")
        return "\n".join(lines)
