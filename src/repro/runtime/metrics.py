"""Delivery metrics: what the receiver actually experienced.

A :class:`DeliveryReport` aggregates one simulated streaming session: the
configuration delivered, the user's satisfaction with it, startup latency,
sustained throughput, frame statistics under loss and bandwidth
fluctuation, and the money spent.  Produced by
:class:`~repro.runtime.pipeline.DeliveryPipeline`; consumed by examples,
integration tests, and the E12 bench.

A :class:`PlannerReport` is the planning-side counterpart: one batch-plan
run's throughput plus the cache counters behind it.  Produced by the
``plan-batch`` CLI command and the batch-planner bench.

Every metrics producer in the repo — :class:`PlannerReport`, the
simulator's :class:`~repro.sim.report.SimReport`, and the serving
gateway's ``/metrics`` endpoint — exports through one envelope,
:func:`metrics_document`: a schema-version field, a section name, and the
payload with keys sorted recursively, so downstream scrapers parse one
stable JSON shape instead of three ad-hoc dicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.core.configuration import Configuration

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "metrics_document",
    "metrics_json",
    "DeliveryReport",
    "PlannerReport",
]

#: Version tag stamped on every exported metrics document.  Bump only on
#: incompatible shape changes; adding keys is backward compatible.
METRICS_SCHEMA_VERSION = "repro.metrics/1"


def _sorted_payload(value: Any) -> Any:
    """Recursively sort mapping keys so serialization order is canonical."""
    if isinstance(value, Mapping):
        return {key: _sorted_payload(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_sorted_payload(item) for item in value]
    return value


def metrics_document(section: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Wrap a metrics payload in the repo-wide export envelope.

    The result is JSON-ready: ``schema`` identifies the envelope version,
    ``section`` names the producer (``"planner"``, ``"sim"``,
    ``"gateway"``), and ``metrics`` holds the payload with keys sorted
    recursively.
    """
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "section": section,
        "metrics": _sorted_payload(payload),
    }


def metrics_json(section: str, payload: Mapping[str, Any]) -> str:
    """:func:`metrics_document` rendered as canonical (sorted-key) JSON."""
    return json.dumps(metrics_document(section, payload), indent=2, sort_keys=True)


@dataclass(frozen=True)
class DeliveryReport:
    """Aggregate outcome of one streamed session."""

    #: Service ids along the executed chain, sender first.
    path: Tuple[str, ...]
    #: The configuration the receiver rendered.
    configuration: Configuration
    #: The user's satisfaction with that configuration (Equation 1).
    satisfaction: float
    #: Time until the first frame reached the receiver (seconds).
    startup_latency_s: float
    #: Total simulated stream duration (seconds).
    duration_s: float
    #: Frames handed to the chain by the sender.
    frames_sent: int
    #: Frames that survived loss and bandwidth dips to reach the receiver.
    frames_delivered: int
    #: Average delivered frame rate over the session (fps).
    average_frame_rate: float
    #: Standard deviation of per-second delivered frame counts (jitter
    #: proxy).
    frame_rate_jitter: float
    #: Money spent: service costs plus transmission costs.
    total_cost: float
    #: Aggregate CPU work performed by the transcoders (MIPS·seconds).
    cpu_mips_seconds: float

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent frames that never arrived."""
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_delivered / self.frames_sent

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"path:              {','.join(self.path)}",
            f"satisfaction:      {self.satisfaction:.4f}",
            f"delivered config:  {self.configuration!r}",
            f"startup latency:   {self.startup_latency_s * 1000:.1f} ms",
            f"avg frame rate:    {self.average_frame_rate:.2f} fps "
            f"(jitter {self.frame_rate_jitter:.2f})",
            f"frames:            {self.frames_delivered}/{self.frames_sent} "
            f"delivered ({self.loss_fraction * 100:.1f}% lost)",
            f"total cost:        {self.total_cost:.2f}",
            f"cpu work:          {self.cpu_mips_seconds:.1f} MIPS*s",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class PlannerReport:
    """Aggregate outcome of one batch-planning run."""

    #: Sessions planned in the batch.
    sessions: int
    #: Plans that came out feasible (selection succeeded).
    successes: int
    #: Cache lookups served from memory.
    cache_hits: int
    #: Cache lookups that had to compute.
    cache_misses: int
    #: Entries dropped because the infrastructure moved on.
    invalidations: int
    #: Entries dropped by the LRU bound.
    evictions: int
    #: Wall-clock time for the batch (seconds).
    elapsed_s: float
    #: Optimize() invocations across every planned session (0 when the
    #: planner did not report them).
    optimize_calls: int = 0
    #: Optimize() invocations served from the shared memo.
    optimize_memo_hits: int = 0
    #: Selector settle rounds summed over the batch's planned sessions.
    settle_rounds: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none ran)."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def optimize_memo_hit_rate(self) -> float:
        """Fraction of optimize() calls served from the memo."""
        if self.optimize_calls == 0:
            return 0.0
        return self.optimize_memo_hits / self.optimize_calls

    @property
    def throughput_per_s(self) -> float:
        """Sessions planned per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.sessions / self.elapsed_s

    def summary(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"sessions:          {self.sessions} "
            f"({self.successes} feasible)",
            f"elapsed:           {self.elapsed_s * 1000:.1f} ms "
            f"({self.throughput_per_s:.0f} plans/s)",
            f"cache hits:        {self.cache_hits} "
            f"({self.hit_rate * 100:.1f}% hit rate)",
            f"cache misses:      {self.cache_misses}",
            f"invalidations:     {self.invalidations}",
            f"evictions:         {self.evictions}",
        ]
        if self.optimize_calls:
            lines.append(
                f"optimize calls:    {self.optimize_calls} "
                f"({self.optimize_memo_hit_rate * 100:.1f}% memoized)"
            )
        if self.settle_rounds:
            lines.append(f"settle rounds:     {self.settle_rounds}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """This report in the repo-wide metrics envelope."""
        return metrics_document(
            "planner",
            {
                "sessions": self.sessions,
                "successes": self.successes,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": self.hit_rate,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "elapsed_s": self.elapsed_s,
                "throughput_per_s": self.throughput_per_s,
                "optimize_calls": self.optimize_calls,
                "optimize_memo_hits": self.optimize_memo_hits,
                "optimize_memo_hit_rate": self.optimize_memo_hit_rate,
                "settle_rounds": self.settle_rounds,
            },
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
