"""Ordered event log for adaptation sessions.

A tiny structured log: events carry a logical timestamp, a category, and a
message.  Sessions and pipelines append as they work; tests assert on the
sequence, and the examples print it as a narrative of what the framework
did.

Long-running consumers (the discrete-event simulator streams hundreds of
thousands of events through one log) can bound memory by constructing the
log with a ``capacity``: the log becomes a ring buffer that keeps the most
recent ``capacity`` events and counts what it dropped.  The default
(``capacity=None``) preserves the original unbounded behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Union

from repro.errors import ValidationError

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence."""

    time_s: float
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time_s:9.3f}s] {self.category:<12} {self.message}"


class EventLog:
    """Append-only, time-monotone event record.

    With ``capacity`` set, the log keeps only the newest ``capacity``
    events (a ring buffer); :attr:`dropped` counts how many fell off the
    front.  Time monotonicity is enforced against the last *recorded*
    event, so dropping old events never loosens the check.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValidationError("event-log capacity must be >= 1")
        self._capacity = capacity
        self._events: Union[List[Event], Deque[Event]] = (
            [] if capacity is None else deque(maxlen=capacity)
        )
        self._dropped = 0
        self._last_time: Optional[float] = None

    @property
    def capacity(self) -> Optional[int]:
        """Ring-buffer bound, or ``None`` when unbounded."""
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer (0 when unbounded)."""
        return self._dropped

    def record(self, time_s: float, category: str, message: str) -> Event:
        if not category:
            raise ValidationError("event category must be non-empty")
        if self._last_time is not None and time_s < self._last_time:
            raise ValidationError(
                f"event time {time_s} precedes last event "
                f"({self._last_time})"
            )
        event = Event(time_s=time_s, category=category, message=message)
        if self._capacity is not None and len(self._events) == self._capacity:
            self._dropped += 1  # deque(maxlen=...) evicts the oldest
        self._events.append(event)
        self._last_time = time_s
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def in_category(self, category: str) -> List[Event]:
        return [e for e in self._events if e.category == category]

    def last(self) -> Optional[Event]:
        return self._events[-1] if self._events else None

    def render(self) -> str:
        return "\n".join(str(event) for event in self._events)
