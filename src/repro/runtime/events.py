"""Ordered event log for adaptation sessions.

A tiny structured log: events carry a logical timestamp, a category, and a
message.  Sessions and pipelines append as they work; tests assert on the
sequence, and the examples print it as a narrative of what the framework
did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ValidationError

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence."""

    time_s: float
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time_s:9.3f}s] {self.category:<12} {self.message}"


class EventLog:
    """Append-only, time-monotone event record."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, time_s: float, category: str, message: str) -> Event:
        if not category:
            raise ValidationError("event category must be non-empty")
        if self._events and time_s < self._events[-1].time_s:
            raise ValidationError(
                f"event time {time_s} precedes last event "
                f"({self._events[-1].time_s})"
            )
        event = Event(time_s=time_s, category=category, message=message)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def in_category(self, category: str) -> List[Event]:
        return [e for e in self._events if e.category == category]

    def last(self) -> Optional[Event]:
        return self._events[-1] if self._events else None

    def render(self) -> str:
        return "\n".join(str(event) for event in self._events)
