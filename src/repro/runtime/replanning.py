"""Mid-session re-planning under fluctuating bandwidth.

The paper's network profile exists because "it is necessary ... to
dynamically adapt the multimedia content to the fluctuating network
resources" (Section 3) — but the selection algorithm itself plans against a
snapshot.  This module closes that loop, as the framework's deployment
story implies:

- an :class:`AdaptiveSession` streams a planned chain while periodically
  *observing* the bandwidth its hops actually get (via the fluctuation
  model);
- when the observed deliverable satisfaction falls below a threshold
  fraction of the plan, it re-snapshots the topology at current bandwidth
  levels, re-runs graph construction + selection, and switches chains if
  the new plan is better;
- the whole history lands in a :class:`ReplanReport` timeline.

Everything is deterministic for a fixed fluctuation model, so the E13
bench and the tests can assert exact switch points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.graph import AdaptationGraphBuilder
from repro.core.parameters import FRAME_RATE
from repro.core.selection import QoSPathSelector, SelectionResult
from repro.errors import NoPathError, ValidationError
from repro.network.bandwidth import BandwidthEstimator, FluctuationModel
from repro.network.placement import ServicePlacement
from repro.network.topology import Link, NetworkTopology
from repro.runtime.events import EventLog
from repro.workloads.scenario import Scenario

__all__ = ["ReplanReport", "StreamSegment", "AdaptiveSession"]


@dataclass(frozen=True)
class StreamSegment:
    """One stretch of the session streamed over a single chain."""

    start_s: float
    end_s: float
    path: Tuple[str, ...]
    planned_satisfaction: float
    observed_satisfaction: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ReplanReport:
    """Outcome of one adaptive session."""

    segments: List[StreamSegment] = field(default_factory=list)
    replans: int = 0
    failed_replans: int = 0
    events: EventLog = field(default_factory=EventLog)

    def average_observed_satisfaction(self) -> float:
        """Time-weighted mean of the observed satisfaction."""
        total = sum(s.duration_s for s in self.segments)
        if total <= 0:
            return 0.0
        return sum(s.observed_satisfaction * s.duration_s for s in self.segments) / total

    def chains_used(self) -> List[Tuple[str, ...]]:
        """Distinct chains in order of first use."""
        seen: List[Tuple[str, ...]] = []
        for segment in self.segments:
            if segment.path not in seen:
                seen.append(segment.path)
        return seen


class AdaptiveSession:
    """Streams a scenario with periodic observation and re-planning."""

    def __init__(
        self,
        scenario: Scenario,
        fluctuation: FluctuationModel,
        check_interval_s: float = 1.0,
        replan_threshold: float = 0.8,
    ) -> None:
        if check_interval_s <= 0:
            raise ValidationError("check interval must be positive")
        if not 0.0 < replan_threshold <= 1.0:
            raise ValidationError("replan threshold must lie in (0, 1]")
        self._scenario = scenario
        self._fluctuation = fluctuation
        self._estimator = BandwidthEstimator(scenario.topology, fluctuation)
        self._interval = check_interval_s
        self._threshold = replan_threshold

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_satisfaction(self, result: SelectionResult, time_s: float) -> float:
        """Satisfaction deliverable over the chain at instant ``time_s``.

        Re-evaluates every hop's bandwidth under the fluctuation model and
        caps the planned frame rate by the tightest hop (the other
        parameters are not bandwidth-elastic mid-stream).
        """
        scenario = self._scenario
        config = result.configuration
        if config is None:
            return 0.0
        planned_fps = config.get_value(FRAME_RATE, 0.0) or 0.0
        achievable = planned_fps
        for source, target, fmt_name in zip(
            result.path, result.path[1:], result.formats
        ):
            source_node = self._node_of(source)
            target_node = self._node_of(target)
            if source_node == target_node:
                continue
            bandwidth = self._estimator.available_bandwidth(
                source_node, target_node, time_s
            )
            fmt = scenario.registry.get(fmt_name)
            per_frame = config.with_value(FRAME_RATE, 1.0).required_bandwidth(fmt)
            if per_frame > 0:
                achievable = min(achievable, bandwidth / per_frame)
        observed = config.with_value(FRAME_RATE, min(planned_fps, achievable))
        satisfaction = self._scenario.user.satisfaction()
        values = []
        for name in satisfaction.parameter_names():
            if name in observed:
                values.append(satisfaction.individual(name, observed[name]))
        return satisfaction.combiner(values) if values else 0.0

    def _node_of(self, service_id: str) -> str:
        if service_id == "sender":
            return self._scenario.sender_node
        if service_id == "receiver":
            return self._scenario.receiver_node
        return self._scenario.placement.node_of(service_id)

    # ------------------------------------------------------------------
    # Re-planning
    # ------------------------------------------------------------------
    def snapshot_topology(self, time_s: float) -> NetworkTopology:
        """A copy of the topology with instantaneous link bandwidths."""
        source = self._scenario.topology
        snapshot = NetworkTopology()
        for node in source.nodes():
            snapshot.add_node(node)
        for link in source.links():
            factor = self._fluctuation.factor(link, time_s)
            snapshot.add_link(
                Link(
                    a=link.a,
                    b=link.b,
                    bandwidth_bps=link.bandwidth_bps * factor,
                    delay_ms=link.delay_ms,
                    loss_rate=link.loss_rate,
                    cost=link.cost,
                )
            )
        return snapshot

    def plan_at(self, time_s: float) -> SelectionResult:
        """Run graph construction + selection against the instant's
        bandwidths."""
        scenario = self._scenario
        snapshot = self.snapshot_topology(time_s)
        placement = ServicePlacement(snapshot, scenario.placement.as_dict())
        builder = AdaptationGraphBuilder(scenario.catalog, placement)
        graph = builder.build(
            content=scenario.content,
            device=scenario.device,
            sender_node=scenario.sender_node,
            receiver_node=scenario.receiver_node,
            context_caps=(
                scenario.context.parameter_caps()
                if scenario.context is not None
                else None
            ),
        )
        return QoSPathSelector.for_user(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user,
            record_trace=False,
        ).run()

    # ------------------------------------------------------------------
    # The adaptive loop
    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> ReplanReport:
        """Stream for ``duration_s`` with observation every interval."""
        if duration_s <= 0:
            raise ValidationError("duration must be positive")
        report = ReplanReport()
        current = self.plan_at(0.0)
        if not current.success:
            raise NoPathError("no feasible chain even at session start")
        report.events.record(
            0.0, "plan", f"initial chain {','.join(current.path)} "
            f"(S={current.satisfaction:.3f})"
        )
        segment_start = 0.0
        segment_scores: List[float] = [current.satisfaction]

        time_s = self._interval
        while time_s <= duration_s + 1e-9:
            observed = self.observe_satisfaction(current, time_s)
            floor = self._threshold * current.satisfaction
            if observed + 1e-12 < floor:
                report.events.record(
                    time_s,
                    "degraded",
                    f"observed S={observed:.3f} < floor {floor:.3f}",
                )
                replanned = self.plan_at(time_s)
                if replanned.success and (
                    replanned.satisfaction > observed + 1e-9
                ):
                    report.segments.append(
                        StreamSegment(
                            start_s=segment_start,
                            end_s=time_s,
                            path=current.path,
                            planned_satisfaction=current.satisfaction,
                            observed_satisfaction=(
                                sum(segment_scores) / len(segment_scores)
                            ),
                        )
                    )
                    switched = replanned.path != current.path
                    current = replanned
                    segment_start = time_s
                    segment_scores = [replanned.satisfaction]
                    report.replans += 1
                    report.events.record(
                        time_s,
                        "replan",
                        f"{'switched to' if switched else 'kept'} "
                        f"{','.join(current.path)} (S={current.satisfaction:.3f})",
                    )
                else:
                    report.failed_replans += 1
                    segment_scores.append(observed)
                    report.events.record(
                        time_s, "replan-failed", "no better chain available"
                    )
            else:
                segment_scores.append(observed)
            time_s += self._interval

        report.segments.append(
            StreamSegment(
                start_s=segment_start,
                end_s=duration_s,
                path=current.path,
                planned_satisfaction=current.satisfaction,
                observed_satisfaction=sum(segment_scores) / len(segment_scores),
            )
        )
        report.events.record(duration_s, "done", f"{report.replans} replans")
        return report
