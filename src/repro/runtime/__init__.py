"""Runtime: end-to-end adaptation sessions over the simulated substrate.

The paper's framework ends where the selected chain starts streaming; this
package closes the loop so examples and benches can observe actual
delivery:

- :class:`~repro.runtime.session.AdaptationSession` — wires profiles →
  graph construction → pruning → selection into one call and hands back a
  plan;
- :class:`~repro.runtime.pipeline.DeliveryPipeline` — streams the selected
  chain over the topology (per-hop transmission and processing latency,
  bandwidth fluctuation, loss), producing a
  :class:`~repro.runtime.metrics.DeliveryReport`;
- :class:`~repro.runtime.events.EventLog` — ordered, timestamped record of
  what happened, for debugging and assertions.
"""

from repro.runtime.events import Event, EventLog
from repro.runtime.metrics import DeliveryReport
from repro.runtime.pipeline import DeliveryPipeline
from repro.runtime.session import AdaptationSession, SessionPlan

__all__ = [
    "Event",
    "EventLog",
    "DeliveryReport",
    "DeliveryPipeline",
    "AdaptationSession",
    "SessionPlan",
]
