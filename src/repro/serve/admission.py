"""Admission machinery for the planning gateway.

Two mechanisms stand between an arriving request and a planner worker:

- :class:`RateLimiter` — per-client token buckets.  A client that bursts
  past its refill rate is told to back off (429 + ``Retry-After``) before
  its request ever touches the queue, so one greedy client cannot starve
  the fleet.
- :class:`DeadlineQueue` — a bounded earliest-deadline-first priority
  queue.  ``try_put`` refuses (returns ``False``) when the queue is at
  capacity: that is the load-shedding decision, taken in O(1) at arrival
  rather than after the request has aged in an unbounded backlog.  Workers
  pop the request whose deadline expires soonest, so under pressure the
  gateway spends its planning budget where it can still make the deadline.

Both are deliberately clock-injected (``now`` is always a parameter or a
callable) so tests drive them deterministically without sleeping.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

import asyncio

from repro.errors import ValidationError

__all__ = ["TokenBucket", "RateLimiter", "DeadlineQueue"]


class TokenBucket:
    """The classic token bucket: ``rate_per_s`` refill, ``burst`` capacity."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ValidationError("token bucket rate must be positive")
        if burst < 1:
            raise ValidationError("token bucket burst must be >= 1")
        self._rate = rate_per_s
        self._burst = float(burst)
        self._tokens = float(burst)
        self._updated_at: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._updated_at is not None and now > self._updated_at:
            self._tokens = min(
                self._burst, self._tokens + (now - self._updated_at) * self._rate
            )
        self._updated_at = now

    def try_acquire(self, now: float) -> bool:
        """Take one token if available; refills lazily from elapsed time."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_s(self, now: float) -> float:
        """Seconds until one token will be available (0.0 if already is)."""
        self._refill(now)
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self._rate


class RateLimiter:
    """Per-client token buckets with a bounded client table.

    ``max_clients`` caps memory: when a new client would overflow the
    table, the least recently seen client's bucket is dropped (it will be
    recreated, full, on its next request — a deliberate bias towards
    admitting rather than stalling rare clients).
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        max_clients: int = 10_000,
    ) -> None:
        if max_clients < 1:
            raise ValidationError("rate limiter needs max_clients >= 1")
        if rate_per_s < 0:
            raise ValidationError(
                "rate limiter rate_per_s must be >= 0 (0 disables limiting)"
            )
        if rate_per_s > 0:
            # Buckets are built lazily per client; validate the parameters
            # now so a misconfigured daemon fails at start, not on the
            # first request.
            TokenBucket(rate_per_s, burst)
        self._rate = rate_per_s
        self._burst = burst
        self._max_clients = max_clients
        self._buckets: Dict[str, TokenBucket] = {}
        self._last_seen: Dict[str, float] = {}

    @property
    def enabled(self) -> bool:
        return self._rate > 0

    def check(self, client: str, now: float) -> Tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one request from ``client``."""
        if not self.enabled:
            return True, 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self._max_clients:
                oldest = min(self._last_seen, key=self._last_seen.get)
                del self._buckets[oldest]
                del self._last_seen[oldest]
            bucket = TokenBucket(self._rate, self._burst)
            self._buckets[client] = bucket
        self._last_seen[client] = now
        if bucket.try_acquire(now):
            return True, 0.0
        return False, bucket.retry_after_s(now)


class DeadlineQueue:
    """A bounded earliest-deadline-first queue for one asyncio loop.

    ``try_put`` is synchronous and never blocks: a full queue is a shed
    signal, not a place to wait.  ``get`` awaits the next item in deadline
    order.  ``drain_pending`` empties the queue at shutdown so every
    queued item can be answered (503) instead of silently dropped.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValidationError("DeadlineQueue needs maxsize >= 1")
        self._maxsize = maxsize
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0
        self._not_empty: asyncio.Event = asyncio.Event()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def try_put(self, deadline: float, item: Any) -> bool:
        """Enqueue unless full; ``False`` means the caller must shed."""
        if len(self._heap) >= self._maxsize:
            return False
        heapq.heappush(self._heap, (deadline, self._seq, item))
        self._seq += 1
        self._not_empty.set()
        return True

    async def get(self) -> Tuple[float, Any]:
        """The (deadline, item) pair with the earliest deadline."""
        while not self._heap:
            self._not_empty.clear()
            await self._not_empty.wait()
        deadline, _, item = heapq.heappop(self._heap)
        return deadline, item

    def drain_pending(self) -> List[Any]:
        """Remove and return every queued item (shutdown path)."""
        items = [item for _, _, item in sorted(self._heap)]
        self._heap.clear()
        self._not_empty.clear()
        return items
