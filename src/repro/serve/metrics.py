"""Gateway observability: counters plus latency/satisfaction histograms.

Everything here is mutated only from the gateway's event loop, so no
locking is needed; a snapshot is therefore always internally consistent.
Export goes through :func:`repro.runtime.metrics.metrics_document`, the
same envelope the planner and simulator reports use — one schema for
every metrics surface in the repo.

The histogram implementation itself lives in
:mod:`repro.runtime.metrics` (re-exported here for compatibility): the
cluster supervisor merges worker histograms bucket-wise from their JSON
exports, so construction, export, and merge must share one definition.
Histograms are fixed-bucket (cumulative counts are derivable by the
consumer); bounds and counts export as parallel arrays so sorted-key JSON
cannot scramble bucket order.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.runtime.metrics import Histogram, metrics_document

__all__ = [
    "Histogram",
    "GatewayMetrics",
    "LATENCY_BUCKETS_MS",
    "SATISFACTION_BUCKETS",
]

#: End-to-end latency bucket upper bounds, in milliseconds.
LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0,
                      800.0, 1600.0)
#: Planned-satisfaction bucket upper bounds (Equation 1 lies in [0, 1]).
SATISFACTION_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class GatewayMetrics:
    """Every counter the gateway maintains, plus the two histograms."""

    COUNTERS = (
        "received",          # plan requests that reached dispatch
        "planned",           # answered 200 (feasible or infeasible)
        "infeasible",        # subset of planned with success=false
        "shed_queue",        # 429: deadline queue full
        "shed_rate",         # 429: per-client token bucket empty
        "shed_busy",         # 429: planner pool saturated by abandoned work
        "expired",           # 504: deadline passed while queued
        "timeouts",          # 504: planning overran the deadline
        "invalid",           # 400: body failed decoding/validation
        "unplannable",       # 422: planner raised a typed repro error
        "rejected_draining", # 503: arrived during drain
        "errors",            # 500: unexpected exception (kept, never raised)
        "protocol_errors",   # 400: HTTP framing failures
        "reloads",           # successful hot catalog swaps
        "connections",       # connections accepted
        "shard_hits",        # hinted requests that landed on their shard owner
        "shard_misses",      # hinted requests that landed elsewhere (cold cache)
        "reports",           # outcome samples accepted into breakers
        "degraded",          # 200: degraded-mode passthrough answers
        "breaker_opens",     # local breaker transitions into OPEN
        "breaker_closes",    # local breaker transitions into CLOSED
        "quarantine_rebuilds",  # quarantine-set changes that flushed plans
        "groups",            # /plan-group requests answered 200
        "group_sessions",    # sessions covered by those groups
        "group_branches",    # feasible per-class branches across all groups
        "group_fallbacks",   # classes with no feasible branch (per-session fallback)
        "group_saved_bps",   # aggregate shared-bandwidth savings (bps, rounded)
        "policy_fast_path",  # 200: policy skip answered without the selector
        "policy_denied",     # 403: policy deny rule rejected the request
        "policy_tier_forced",  # requests planned through a forced hardware tier
    )

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {name: 0 for name in self.COUNTERS}
        self.latency_ms = Histogram(LATENCY_BUCKETS_MS)
        self.queue_wait_ms = Histogram(LATENCY_BUCKETS_MS)
        self.satisfaction = Histogram(SATISFACTION_BUCKETS)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def snapshot(
        self,
        *,
        generation: int,
        uptime_s: float,
        queue_depth: int,
        inflight: int,
        draining: bool,
        cache: Optional[Mapping[str, Any]] = None,
        worker_id: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The ``/metrics`` document (repo-wide envelope, keys sorted)."""
        payload: Dict[str, Any] = {
            "counters": dict(self.counters),
            "latency_ms": self.latency_ms.to_dict(),
            "queue_wait_ms": self.queue_wait_ms.to_dict(),
            "satisfaction": self.satisfaction.to_dict(),
            "generation": generation,
            "uptime_s": round(uptime_s, 3),
            "queue_depth": queue_depth,
            "inflight": inflight,
            "draining": draining,
        }
        if cache is not None:
            payload["cache"] = dict(cache)
        if worker_id is not None:
            payload["worker_id"] = worker_id
        return metrics_document("gateway", payload)
