"""The multi-process gateway cluster: one supervisor, N forked workers.

A single :class:`~repro.serve.gateway.PlanningGateway` tops out at one
event loop and one GIL-bound planner pool.  The cluster scales the same
serving contract across processes: a parent :class:`ClusterSupervisor`
forks ``N`` worker processes, each running its *own* gateway — private
:class:`~repro.planner.batch.BatchPlanner`, private thread pool, private
:class:`~repro.planner.cache.PlanCache` — all accepting from one shared
``(host, port)``.

Socket sharing uses ``SO_REUSEPORT`` where the platform has it: the
parent binds an *anchor* socket (bound, never listening — it reserves
the port and surfaces bind conflicts early without joining the kernel's
reuseport lookup group), and every worker binds its own listening socket
to the same address, letting the kernel spread accepted connections
across them.  Without ``SO_REUSEPORT`` the parent binds and listens
once and children serve the inherited socket (classic pre-fork accept).

Each worker additionally listens on a private ephemeral port running the
same dispatch.  The supervisor scrapes per-worker ``/metrics`` there,
and shard-affinity-aware clients (``repro loadgen --shard-affinity``)
route hinted requests straight to the owning worker's private port —
the shared port remains the hint-less, kernel-balanced path.

Control is a pipe per worker, not shared memory: the parent fans out
``drain`` / ``reload_body`` / ``reload_path`` messages; workers answer
``ready`` / ``reloaded`` / ``reload_error`` / ``drained``.  A worker
that dies is restarted with exponential backoff (``worker_restarts`` in
the merged metrics); a drain stops restarts, lets every worker answer
its in-flight work, and merges the final per-worker metrics documents —
counters summed, histograms merged bucket-exactly via
:func:`repro.runtime.metrics.merge_histogram_dicts`.

Nothing here is a module-level singleton: every worker builds its full
serving state explicitly from the pickled-by-fork configuration, so two
clusters in one test process never share a cache or a planner.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import (
    GatewayError,
    GatewayProtocolError,
    ReproError,
)
from repro.runtime.metrics import (
    Histogram,
    merge_histogram_dicts,
    metrics_document,
)
from repro.serve.gateway import GatewayConfig, PlanningGateway
from repro.serve.http11 import (
    read_request,
    read_response,
    render_request,
    render_response,
)
from repro.serve.metrics import LATENCY_BUCKETS_MS, SATISFACTION_BUCKETS
from repro.serve.protocol import (
    decode_reload_scenario,
    encode_payload,
    error_payload,
)
from repro.serve.sharding import ShardRouter
from repro.workloads.io import load_scenario
from repro.workloads.scenario import Scenario

__all__ = ["ClusterConfig", "ClusterSupervisor", "supports_reuseport"]

#: Per-scrape timeout when the supervisor fetches a worker's /metrics.
_SCRAPE_TIMEOUT_S = 2.0


def supports_reuseport() -> bool:
    """Whether this platform can share a listening port across processes."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass(frozen=True)
class ClusterConfig:
    """Supervisor-level knobs (per-worker knobs live in GatewayConfig)."""

    #: Worker processes to fork.  The CLI routes ``--workers 1`` around
    #: the supervisor entirely; the class itself accepts any count >= 1.
    workers: int = 2
    #: Where the parent's admin/metrics server binds (0 = ephemeral).
    admin_host: str = "127.0.0.1"
    admin_port: int = 8078
    #: First restart delay after a worker death; doubles per consecutive
    #: death up to the max, and resets when a replacement reports ready.
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 2.0
    #: How long :meth:`ClusterSupervisor.start` waits for every worker's
    #: ``ready`` message before declaring the boot failed.
    ready_timeout_s: float = 15.0
    #: Per-worker bound on a reload acknowledgement: a worker that has
    #: not answered by then is reported with status ``timeout`` instead
    #: of stalling the whole fan-out (e.g. a SIGSTOP'd process).
    reload_timeout_s: float = 30.0
    #: Extra wait past the workers' own ``drain_grace_s`` before the
    #: supervisor terminates (then kills) stragglers at drain.
    drain_margin_s: float = 5.0


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------
def _worker_main(
    config: GatewayConfig,
    scenario: Scenario,
    scenario_path: Optional[str],
    conn: Any,
    listen_sock: Optional[socket.socket],
) -> None:
    """Child-process entry: run one gateway until drained.

    Forked from inside the parent's running event loop, so the first job
    is shedding inherited asyncio signal plumbing: the parent loop's
    wakeup fd would otherwise receive this child's signals, and the
    parent's handlers are meaningless here.
    """
    signal.set_wakeup_fd(-1)
    for signum in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP):
        signal.signal(signum, signal.SIG_DFL)
    try:
        asyncio.run(
            _worker_async(config, scenario, scenario_path, conn, listen_sock)
        )
    except (KeyboardInterrupt, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


async def _worker_async(
    config: GatewayConfig,
    scenario: Scenario,
    scenario_path: Optional[str],
    conn: Any,
    listen_sock: Optional[socket.socket],
) -> None:
    gateway = PlanningGateway(scenario, config)
    loop = asyncio.get_running_loop()

    # Local breaker transitions flow up to the supervisor, which fans
    # them out to the sibling workers — every worker converges on one
    # cluster-wide quarantine view regardless of which one saw the
    # failing outcomes.
    def on_health_transition(record: Any) -> None:
        _send_safe(
            conn,
            (
                "health",
                {
                    "service": record.service_id,
                    "state": record.new,
                    "reason": record.reason,
                },
            ),
        )

    gateway.on_health_transition = on_health_transition

    def on_control() -> None:
        try:
            message, payload = conn.recv()
        except (EOFError, OSError):
            # Parent is gone; nothing to serve for.
            try:
                loop.remove_reader(conn.fileno())
            except (OSError, ValueError):
                pass
            gateway.request_drain()
            return
        if message == "drain":
            gateway.request_drain()
        elif message == "reload_body":
            loop.create_task(_child_reload_body(gateway, conn, payload))
        elif message == "reload_path":
            loop.create_task(_child_reload_path(gateway, conn, scenario_path))
        elif message == "health_apply" and isinstance(payload, Mapping):
            gateway.apply_remote_health(
                str(payload.get("service", "")),
                str(payload.get("state", "")),
                reason=str(payload.get("reason", "cluster")),
            )

    def on_ready(gw: PlanningGateway) -> None:
        loop.add_reader(conn.fileno(), on_control)
        _send_safe(
            conn,
            (
                "ready",
                {
                    "worker_id": gw.worker_id,
                    "pid": os.getpid(),
                    "port": gw.port,
                    "private_port": gw.private_port,
                    "generation": gw.generation,
                },
            ),
        )

    final = await gateway.run(
        install_signals=True, on_ready=on_ready, sock=listen_sock
    )
    try:
        loop.remove_reader(conn.fileno())
    except (OSError, ValueError):
        pass
    _send_safe(conn, ("drained", final))


async def _child_reload_body(
    gateway: PlanningGateway, conn: Any, body: bytes
) -> None:
    try:
        summary = await gateway.reload_from_body(body)
    except ReproError as exc:
        _send_safe(conn, ("reload_error", str(exc)))
        return
    _send_safe(conn, ("reloaded", summary))


async def _child_reload_path(
    gateway: PlanningGateway, conn: Any, scenario_path: Optional[str]
) -> None:
    if scenario_path is None:
        _send_safe(conn, ("reload_error", "no scenario file to reload from"))
        return
    loop = asyncio.get_running_loop()
    try:
        scenario = await loop.run_in_executor(None, load_scenario, scenario_path)
    except (OSError, ReproError) as exc:
        _send_safe(conn, ("reload_error", str(exc)))
        return
    _send_safe(conn, ("reloaded", gateway.swap_scenario(scenario)))


def _send_safe(conn: Any, message: Tuple[str, Any]) -> None:
    """Send on a control pipe whose peer may have died; losing it is fine."""
    try:
        conn.send(message)
    except (OSError, ValueError, BrokenPipeError):
        pass


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker slot (survives restarts)."""

    worker_id: int
    process: Any = None
    conn: Any = None
    ready: "asyncio.Event" = field(default_factory=asyncio.Event)
    pid: Optional[int] = None
    port: Optional[int] = None
    private_port: Optional[int] = None
    generation: int = 0
    restarts: int = 0
    backoff_s: float = 0.0
    alive: bool = False
    final_metrics: Optional[Dict[str, Any]] = None
    pending_reload: Optional["asyncio.Future"] = None


class ClusterSupervisor:
    """Forks, feeds, restarts, and drains a cluster of gateway workers."""

    def __init__(
        self,
        scenario: Scenario,
        gateway_config: Optional[GatewayConfig] = None,
        cluster_config: Optional[ClusterConfig] = None,
        scenario_path: Optional[str] = None,
    ) -> None:
        self._scenario = scenario
        self._gateway_config = (
            gateway_config if gateway_config is not None else GatewayConfig()
        )
        self._cluster = (
            cluster_config if cluster_config is not None else ClusterConfig()
        )
        if self._cluster.workers < 1:
            raise GatewayError(
                f"cluster needs at least one worker, got {self._cluster.workers}"
            )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - all POSIX platforms fork
            raise GatewayError(
                "cluster mode requires the 'fork' process start method"
            ) from None
        self._scenario_path = scenario_path
        self._router = ShardRouter.for_cluster(self._cluster.workers)
        self._handles: Dict[int, _WorkerHandle] = {
            worker_id: _WorkerHandle(worker_id=worker_id)
            for worker_id in range(self._cluster.workers)
        }
        self._mode: Optional[str] = None
        self._anchor: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._admin_port_bound: Optional[int] = None
        self._port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at: Optional[float] = None
        self._draining = False
        self._drain_requested: Optional[asyncio.Event] = None
        self._worker_restarts = 0
        self._reload_lock: Optional[asyncio.Lock] = None
        #: Reload fan-outs currently awaiting worker acknowledgements;
        #: /readyz answers 503 while this is non-zero.
        self._reload_inflight = 0
        #: Latest breaker verdict per service, as reported by workers —
        #: the merged view GET /health serves without scraping.
        self._health_view: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._port is None:
            raise GatewayError("cluster not started")
        return self._port

    @property
    def admin_port(self) -> int:
        if self._admin_port_bound is None:
            raise GatewayError("cluster not started")
        return self._admin_port_bound

    @property
    def workers(self) -> int:
        return self._cluster.workers

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def worker_restarts(self) -> int:
        return self._worker_restarts

    def generations(self) -> Dict[int, int]:
        """The serving generation each worker last reported."""
        return {
            handle.worker_id: handle.generation
            for handle in self._handles.values()
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Reserve the shared port, fork every worker, bind the admin server."""
        if self._loop is not None:
            raise GatewayError("cluster already started")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._started_at = loop.time()
        self._drain_requested = asyncio.Event()
        self._reload_lock = asyncio.Lock()
        host = self._gateway_config.host
        port = self._gateway_config.port
        if supports_reuseport():
            # Bound but never listening: reserves the port without joining
            # the kernel's reuseport group, so no connection is ever routed
            # to the never-accepting parent.
            self._anchor = _bind_socket(host, port, reuseport=True)
            self._port = self._anchor.getsockname()[1]
            self._mode = "reuseport"
        else:  # pragma: no cover - exercised only on exotic platforms
            self._listen_sock = _bind_socket(host, port, reuseport=False)
            self._listen_sock.listen(512)
            self._port = self._listen_sock.getsockname()[1]
            self._mode = "inherited"
        try:
            for worker_id in range(self._cluster.workers):
                self._spawn_worker(worker_id)
            self._admin_server = await asyncio.start_server(
                self._handle_admin_connection,
                host=self._cluster.admin_host,
                port=self._cluster.admin_port,
            )
            self._admin_port_bound = (
                self._admin_server.sockets[0].getsockname()[1]
            )
            await self._await_ready()
        except BaseException:
            await self._abort()
            raise

    def request_drain(self) -> None:
        """Ask :meth:`run` to drain; safe to call from a signal handler."""
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run(
        self,
        install_signals: bool = True,
        on_ready: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Serve until a drain is requested; returns the merged final metrics.

        Mirrors :meth:`PlanningGateway.run`: SIGTERM/SIGINT request a
        drain, SIGHUP (when serving from a scenario file) fans a
        ``reload_path`` out to every worker.
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_drain)
            if self._scenario_path is not None:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: loop.create_task(self._broadcast_reload_path()),
                )
        try:
            await self._drain_requested.wait()
        finally:
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)
                if self._scenario_path is not None:
                    loop.remove_signal_handler(signal.SIGHUP)
        return await self.drain()

    async def drain(self) -> Dict[str, Any]:
        """Fan out drain, wait for every worker to exit, merge final metrics.

        No restart fires once draining starts.  Workers that outlive the
        grace window (their own ``drain_grace_s`` plus
        ``drain_margin_s``) are terminated, and workers that survive
        even SIGTERM (stopped or wedged processes) are killed — a hung
        worker bounds, never blocks, the parent's exit.  Every worker
        that completed its drain contributes its final metrics document
        to the merge.
        """
        self._draining = True
        loop = asyncio.get_running_loop()
        for handle in self._handles.values():
            if handle.alive and handle.conn is not None:
                _send_safe(handle.conn, ("drain", None))
        deadline = (
            loop.time()
            + self._gateway_config.drain_grace_s
            + self._cluster.drain_margin_s
        )
        while self._alive_count() and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for handle in self._handles.values():
            if handle.alive and handle.process is not None:
                handle.process.terminate()
        deadline = loop.time() + 2.0
        while self._alive_count() and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # SIGTERM never reaches a SIGSTOP'd process's handlers; SIGKILL
        # does.  Anything still alive here is beyond graceful shutdown.
        for handle in self._handles.values():
            if handle.alive and handle.process is not None:
                handle.process.kill()
        deadline = loop.time() + 2.0
        while self._alive_count() and loop.time() < deadline:
            await asyncio.sleep(0.02)
        final = self._merge_documents(
            [
                handle.final_metrics
                for handle in self._handles.values()
                if handle.final_metrics is not None
            ]
        )
        await self._close_admin()
        self._close_sockets()
        return final

    async def _abort(self) -> None:
        """Tear down a partially started cluster (boot failure path)."""
        self._draining = True
        for handle in self._handles.values():
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
        for handle in self._handles.values():
            if handle.process is not None:
                handle.process.join(timeout=2.0)
                self._detach_worker(handle)
                handle.alive = False
        await self._close_admin()
        self._close_sockets()

    async def _close_admin(self) -> None:
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
            self._admin_server = None

    def _close_sockets(self) -> None:
        for sock in (self._anchor, self._listen_sock):
            if sock is not None:
                sock.close()
        self._anchor = None
        self._listen_sock = None

    def _alive_count(self) -> int:
        return sum(1 for handle in self._handles.values() if handle.alive)

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------
    def _spawn_worker(self, worker_id: int) -> None:
        handle = self._handles[worker_id]
        parent_conn, child_conn = self._ctx.Pipe()
        config = replace(
            self._gateway_config,
            port=self._port,
            reuse_port=self._mode == "reuseport",
            worker_id=worker_id,
            cluster_size=self._cluster.workers,
            private_port=0,
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                config,
                self._scenario,
                self._scenario_path,
                child_conn,
                self._listen_sock,
            ),
            name=f"repro-worker-{worker_id}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.ready = asyncio.Event()
        handle.pid = process.pid
        handle.alive = True
        loop = asyncio.get_running_loop()
        loop.add_reader(
            parent_conn.fileno(), self._on_worker_message, worker_id
        )
        loop.add_reader(process.sentinel, self._on_worker_exit, worker_id)

    async def _await_ready(self) -> None:
        waits = [
            handle.ready.wait() for handle in self._handles.values()
        ]
        try:
            await asyncio.wait_for(
                asyncio.gather(*waits), timeout=self._cluster.ready_timeout_s
            )
        except asyncio.TimeoutError:
            missing = sorted(
                handle.worker_id
                for handle in self._handles.values()
                if not handle.ready.is_set()
            )
            raise GatewayError(
                f"workers {missing} failed to report ready within "
                f"{self._cluster.ready_timeout_s:g}s"
            ) from None

    def _on_worker_message(self, worker_id: int) -> None:
        handle = self._handles[worker_id]
        try:
            message, payload = handle.conn.recv()
        except (EOFError, OSError):
            self._remove_reader(handle.conn.fileno())
            return
        self._apply_worker_message(handle, message, payload)

    def _apply_worker_message(
        self, handle: _WorkerHandle, message: str, payload: Any
    ) -> None:
        if message == "ready":
            handle.pid = payload.get("pid", handle.pid)
            handle.port = payload.get("port")
            handle.private_port = payload.get("private_port")
            handle.generation = payload.get("generation", handle.generation)
            handle.backoff_s = 0.0
            handle.ready.set()
            # A restarted worker boots with empty breakers; replay the
            # cluster view so it converges without re-learning failures.
            for service_id, entry in self._health_view.items():
                _send_safe(
                    handle.conn,
                    (
                        "health_apply",
                        {
                            "service": service_id,
                            "state": entry["state"],
                            "reason": "replay",
                        },
                    ),
                )
        elif message == "health":
            self._on_worker_health(handle, payload)
        elif message == "reloaded":
            if isinstance(payload, Mapping):
                handle.generation = payload.get(
                    "generation", handle.generation
                )
            self._resolve_reload(handle, ("ok", payload))
        elif message == "reload_error":
            self._resolve_reload(handle, ("error", payload))
        elif message == "drained":
            handle.final_metrics = payload

    def _on_worker_health(self, handle: _WorkerHandle, payload: Any) -> None:
        """One worker's breaker transition: record it, fan it out.

        The reporting worker already applied the transition locally; the
        supervisor updates its merged view and relays to every *other*
        live worker.  Receivers apply it with their callback suppressed,
        so a relay can never echo back — no broadcast loops.
        """
        if not isinstance(payload, Mapping):
            return
        service = payload.get("service")
        state = payload.get("state")
        if not isinstance(service, str) or not service:
            return
        if not isinstance(state, str) or not state:
            return
        self._health_view[service] = {
            "state": state,
            "worker_id": handle.worker_id,
            "reason": str(payload.get("reason", "")),
        }
        for other in self._handles.values():
            if (
                other.worker_id != handle.worker_id
                and other.alive
                and other.conn is not None
            ):
                _send_safe(other.conn, ("health_apply", dict(payload)))

    def health_document(self) -> Dict[str, Any]:
        """The parent ``GET /health``: latest verdict per service."""
        open_services = sorted(
            service
            for service, entry in self._health_view.items()
            if entry["state"] == "open"
        )
        return {
            "status": "ok",
            "workers": self._cluster.workers,
            "tracked": len(self._health_view),
            "open": open_services,
            "services": {
                service: dict(entry)
                for service, entry in sorted(self._health_view.items())
            },
        }

    @staticmethod
    def _resolve_reload(handle: _WorkerHandle, result: Tuple[str, Any]) -> None:
        future = handle.pending_reload
        if future is not None and not future.done():
            future.set_result(result)

    def _on_worker_exit(self, worker_id: int) -> None:
        handle = self._handles[worker_id]
        process = handle.process
        self._remove_reader(process.sentinel)
        if handle.conn is None:
            # Already detached — an abort or drain tore the worker down
            # before the sentinel callback got its turn on the loop.
            handle.alive = False
            return
        # The final messages (typically "drained") may still sit in the
        # pipe when the sentinel fires; drain them before detaching.
        try:
            while handle.conn.poll():
                message, payload = handle.conn.recv()
                self._apply_worker_message(handle, message, payload)
        except (EOFError, OSError):
            pass
        self._detach_worker(handle)
        process.join()
        handle.alive = False
        handle.ready = asyncio.Event()
        self._resolve_reload(handle, ("error", "worker exited during reload"))
        if self._draining:
            return
        # Any exit outside a drain — crash or not — is unexpected;
        # restart with backoff so a crash loop cannot spin the CPU.
        self._worker_restarts += 1
        handle.restarts += 1
        delay = handle.backoff_s
        handle.backoff_s = min(
            max(
                handle.backoff_s * 2.0,
                self._cluster.restart_backoff_s,
            ),
            self._cluster.restart_backoff_max_s,
        )
        asyncio.get_running_loop().create_task(
            self._restart_worker(worker_id, delay)
        )

    def _detach_worker(self, handle: _WorkerHandle) -> None:
        if handle.conn is not None:
            self._remove_reader(handle.conn.fileno())
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    async def _restart_worker(self, worker_id: int, delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if self._draining:
            return
        self._spawn_worker(worker_id)

    def _remove_reader(self, fd: int) -> None:
        if self._loop is None:
            return
        try:
            self._loop.remove_reader(fd)
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    # Admin server
    # ------------------------------------------------------------------
    async def _handle_admin_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except GatewayProtocolError as exc:
                    writer.write(
                        render_response(
                            400,
                            encode_payload(error_payload("invalid", str(exc))),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    status, payload = await self._dispatch_admin(request)
                except Exception as exc:
                    status = 500
                    payload = error_payload(
                        "error", f"{type(exc).__name__}: {exc}"
                    )
                keep_alive = (
                    request.keep_alive and not self._draining and status != 500
                )
                writer.write(
                    render_response(
                        status,
                        encode_payload(payload),
                        keep_alive=keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch_admin(
        self, request: Any
    ) -> Tuple[int, Dict[str, Any]]:
        route = (request.method, request.path)
        if route == ("GET", "/metrics"):
            return 200, await self.merged_metrics()
        if route == ("GET", "/cluster"):
            return 200, self.cluster_document()
        if route == ("GET", "/health"):
            return 200, self.health_document()
        if route == ("GET", "/healthz"):
            return 200, {"status": "alive", "alive": self._alive_count()}
        if route == ("GET", "/readyz"):
            if self._draining:
                return 503, error_payload("draining")
            if self._reload_inflight:
                return 503, error_payload(
                    "reloading", "reload fan-out in flight"
                )
            if not all(
                handle.ready.is_set() for handle in self._handles.values()
            ):
                return 503, error_payload("starting")
            open_count = sum(
                1
                for entry in self._health_view.values()
                if entry["state"] == "open"
            )
            if self._health_view and open_count * 2 > len(self._health_view):
                return 503, error_payload(
                    "degraded",
                    f"{open_count}/{len(self._health_view)} breakers open",
                )
            return 200, {"status": "ready", "workers": self._cluster.workers}
        if route == ("POST", "/admin/reload"):
            return await self._handle_reload(request.body)
        if request.path in ("/metrics", "/cluster", "/health", "/healthz",
                            "/readyz", "/admin/reload"):
            return 405, error_payload("invalid", "method not allowed")
        return 404, error_payload("invalid", f"no route {request.path!r}")

    async def _handle_reload(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if self._draining:
            return 503, error_payload("draining")
        # Validate before broadcasting so a malformed body is one 400 and
        # zero worker round-trips.  This runs inline: the parent must stay
        # thread-free (forked restarts would inherit executor threads),
        # and admin reloads are rare enough to absorb the decode cost.
        try:
            decode_reload_scenario(body)
        except ReproError as exc:
            return 400, error_payload("invalid", str(exc))
        results = await self._broadcast_reload(("reload_body", bytes(body)))
        workers = [
            {"worker_id": worker_id, "status": status, "detail": detail}
            for worker_id, (status, detail) in sorted(results.items())
        ]
        failed = [entry for entry in workers if entry["status"] != "ok"]
        summary: Dict[str, Any] = {
            "status": "reloaded" if not failed else "partial",
            "workers": workers,
            "generations": {
                str(worker_id): generation
                for worker_id, generation in sorted(self.generations().items())
            },
        }
        return (200 if not failed else 500), summary

    async def _broadcast_reload_path(self) -> None:
        await self._broadcast_reload(("reload_path", None))

    async def _broadcast_reload(
        self, message: Tuple[str, Any]
    ) -> Dict[int, Tuple[str, Any]]:
        """Send one reload to every live worker and collect the acks.

        Serialized under a lock so concurrent reloads cannot interleave
        their acknowledgement futures; a worker that dies mid-reload
        resolves its future via :meth:`_on_worker_exit`.  Each worker's
        acknowledgement is bounded by ``reload_timeout_s`` — a hung
        worker (stopped, livelocked) is reported as ``timeout`` instead
        of stalling the parent indefinitely.  ``/readyz`` answers 503
        for the whole fan-out window.
        """
        loop = asyncio.get_running_loop()
        self._reload_inflight += 1
        try:
            async with self._reload_lock:
                futures: Dict[int, "asyncio.Future"] = {}
                for handle in self._handles.values():
                    if not handle.alive or handle.conn is None:
                        continue
                    future = loop.create_future()
                    handle.pending_reload = future
                    futures[handle.worker_id] = future
                    try:
                        handle.conn.send(message)
                    except (OSError, ValueError):
                        self._resolve_reload(
                            handle, ("error", "worker unreachable")
                        )
                if futures:
                    # One wait bounds every worker: the sends all went
                    # out before it started, so the shared window is a
                    # per-worker acknowledgement budget.
                    await asyncio.wait(
                        futures.values(),
                        timeout=self._cluster.reload_timeout_s,
                    )
                results: Dict[int, Tuple[str, Any]] = {}
                for worker_id, future in futures.items():
                    if future.done():
                        results[worker_id] = future.result()
                    else:
                        future.cancel()
                        results[worker_id] = (
                            "timeout",
                            f"no acknowledgement within "
                            f"{self._cluster.reload_timeout_s:g}s",
                        )
                    self._handles[worker_id].pending_reload = None
                return results
        finally:
            self._reload_inflight -= 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    async def _scrape_worker(
        self, handle: _WorkerHandle
    ) -> Optional[Dict[str, Any]]:
        """Fetch one worker's /metrics over its private port; None if down."""
        if handle.private_port is None:
            return None
        try:
            return await asyncio.wait_for(
                self._fetch_metrics(handle.private_port),
                timeout=_SCRAPE_TIMEOUT_S,
            )
        except (
            OSError,
            asyncio.TimeoutError,
            GatewayProtocolError,
            json.JSONDecodeError,
            UnicodeDecodeError,
        ):
            return None

    async def _fetch_metrics(self, port: int) -> Optional[Dict[str, Any]]:
        reader, writer = await asyncio.open_connection(
            self._gateway_config.host, port
        )
        try:
            writer.write(render_request("GET", "/metrics", keep_alive=False))
            await writer.drain()
            response = await read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
        if response.status != 200:
            return None
        document = json.loads(response.body.decode("utf-8"))
        return document if isinstance(document, dict) else None

    async def merged_metrics(self) -> Dict[str, Any]:
        """The cluster-wide /metrics document: live scrapes merged.

        A worker that cannot be scraped (restarting, mid-crash)
        contributes its last drained document if it sent one, otherwise
        nothing; ``scraped`` in the payload says how many workers the
        merge actually covers, so a partial view is never silent.
        """
        scrapes = await asyncio.gather(
            *(
                self._scrape_worker(handle)
                for handle in self._handles.values()
                if handle.alive
            )
        )
        documents = [doc for doc in scrapes if doc is not None]
        documents.extend(
            handle.final_metrics
            for handle in self._handles.values()
            if not handle.alive and handle.final_metrics is not None
        )
        return self._merge_documents(documents)

    def _merge_documents(
        self, documents: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        payloads = [
            document["metrics"]
            for document in documents
            if isinstance(document, Mapping)
            and isinstance(document.get("metrics"), Mapping)
        ]
        counters: Dict[str, int] = {}
        cache: Dict[str, int] = {}
        queue_depth = 0
        inflight = 0
        for payload in payloads:
            for name, value in (payload.get("counters") or {}).items():
                if isinstance(value, int):
                    counters[name] = counters.get(name, 0) + value
            for name, value in (payload.get("cache") or {}).items():
                if isinstance(value, int):
                    cache[name] = cache.get(name, 0) + value
            queue_depth += payload.get("queue_depth", 0) or 0
            inflight += payload.get("inflight", 0) or 0
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, bounds in (
            ("latency_ms", LATENCY_BUCKETS_MS),
            ("queue_wait_ms", LATENCY_BUCKETS_MS),
            ("satisfaction", SATISFACTION_BUCKETS),
        ):
            exported = [
                payload[name]
                for payload in payloads
                if isinstance(payload.get(name), Mapping)
            ]
            histograms[name] = (
                merge_histogram_dicts(exported)
                if exported
                else Histogram(bounds).to_dict()
            )
        generations = {
            str(payload["worker_id"]): payload.get("generation", 0)
            for payload in payloads
            if "worker_id" in payload
        }
        uptime_s = (
            self._loop.time() - self._started_at
            if self._loop is not None and self._started_at is not None
            else 0.0
        )
        merged: Dict[str, Any] = {
            "workers": self._cluster.workers,
            "alive": self._alive_count(),
            "scraped": len(payloads),
            "worker_restarts": self._worker_restarts,
            "counters": counters,
            "cache": cache,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "generations": generations,
            "draining": self._draining,
            "uptime_s": round(uptime_s, 3),
        }
        merged.update(histograms)
        return metrics_document("cluster", merged)

    def cluster_document(self) -> Dict[str, Any]:
        """The /cluster topology document affinity-aware clients consume."""
        return {
            "status": "draining" if self._draining else "serving",
            "host": self._gateway_config.host,
            "port": self.port,
            "admin_port": self.admin_port,
            "mode": self._mode,
            "ring": self._router.to_dict(),
            "workers": [
                {
                    "worker_id": handle.worker_id,
                    "pid": handle.pid,
                    "alive": handle.alive,
                    "ready": handle.ready.is_set(),
                    "port": handle.port,
                    "private_port": handle.private_port,
                    "generation": handle.generation,
                    "restarts": handle.restarts,
                }
                for handle in sorted(
                    self._handles.values(), key=lambda h: h.worker_id
                )
            ],
        }


def _bind_socket(host: str, port: int, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    return sock
