"""A minimal HTTP/1.1 codec over asyncio streams.

The gateway deliberately avoids ``http.server`` (thread-per-request, no
backpressure) and keeps the wire layer to the subset the planning API
needs: request-line + headers + ``Content-Length`` bodies, keep-alive by
default, no chunked encoding, no pipelining guarantees beyond strict
request/response alternation.  Both the server
(:mod:`repro.serve.gateway`) and the client (:mod:`repro.serve.loadgen`)
share this module, so a framing bug cannot hide on one side only.

Malformed messages raise :class:`~repro.errors.GatewayProtocolError`; a
clean EOF before the first request byte returns ``None`` so connection
loops can distinguish "client hung up" from "client sent garbage".
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import GatewayProtocolError

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "read_response",
    "render_request",
    "render_response",
]

#: Cap on any single header/request line; longer lines are an attack or a bug.
MAX_LINE_BYTES = 8192
#: Cap on the number of header lines per message.
MAX_HEADERS = 64
#: Default cap on message bodies (the gateway overrides per config).
MAX_BODY_BYTES = 1_048_576

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request: method, target path, lower-cased headers, body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class HttpResponse:
    """One parsed response (client side)."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise GatewayProtocolError(f"oversized protocol line: {exc}") from None
    if len(line) > MAX_LINE_BYTES:
        raise GatewayProtocolError("protocol line exceeds MAX_LINE_BYTES")
    return line


async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n"):
            return headers
        if not line:
            raise GatewayProtocolError("connection closed inside headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise GatewayProtocolError("undecodable header line") from None
        if not _ or not name.strip():
            raise GatewayProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    raise GatewayProtocolError("too many header lines")


async def _read_body(
    reader: asyncio.StreamReader,
    headers: Mapping[str, str],
    max_body: int,
) -> bytes:
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise GatewayProtocolError(f"bad Content-Length: {raw_length!r}") from None
    if length < 0:
        raise GatewayProtocolError(f"negative Content-Length: {length}")
    if length > max_body:
        raise GatewayProtocolError(f"body of {length} bytes exceeds cap {max_body}")
    if "transfer-encoding" in headers:
        raise GatewayProtocolError("chunked transfer encoding is not supported")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise GatewayProtocolError("connection closed inside body") from None


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on clean EOF before the first byte."""
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise GatewayProtocolError(f"malformed request line: {line!r}")
    method, path, _version = parts
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers, max_body)
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


async def read_response(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
) -> HttpResponse:
    """Parse one response (used by the loadgen client and tests)."""
    line = await _read_line(reader)
    if not line:
        raise GatewayProtocolError("connection closed before status line")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise GatewayProtocolError(f"malformed status line: {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise GatewayProtocolError(f"malformed status code: {parts[1]!r}") from None
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers, max_body)
    return HttpResponse(status=status, headers=headers, body=body)


def render_request(
    method: str,
    path: str,
    body: bytes = b"",
    headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one client request."""
    lines = [f"{method} {path} HTTP/1.1"]
    merged: Dict[str, str] = {"content-length": str(len(body))}
    if not keep_alive:
        merged["connection"] = "close"
    if headers:
        merged.update({name.lower(): value for name, value in headers.items()})
    lines.extend(f"{name}: {value}" for name, value in sorted(merged.items()))
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def render_response(
    status: int,
    body: bytes = b"",
    headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = True,
    content_type: str = "application/json",
) -> bytes:
    """Serialize one server response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    merged: Dict[str, str] = {
        "content-length": str(len(body)),
        "content-type": content_type,
        "connection": "keep-alive" if keep_alive else "close",
    }
    if headers:
        merged.update({name.lower(): value for name, value in headers.items()})
    lines.extend(f"{name}: {value}" for name, value in sorted(merged.items()))
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def status_reason(status: int) -> Tuple[int, str]:
    """The (status, reason) pair the renderer would emit."""
    return status, _REASONS.get(status, "Unknown")
