"""Per-service failure detection and circuit breaking.

The gateway plans through a catalog snapshot that says nothing about
whether an adaptation service is actually delivering.  This module
closes that gap with three pieces:

- :class:`FailureDetector` — an EWMA over reported outcomes.  Each
  sample moves the failure estimate by ``f <- (1-alpha)*f + alpha*x``
  with ``x = 1`` for a failure.  The estimate is bounded, recency-
  weighted, and cheap: one multiply-add per report.
- :class:`CircuitBreaker` — a CLOSED -> OPEN -> HALF_OPEN state machine
  per service.  Only four transitions are legal (CLOSED->OPEN,
  OPEN->HALF_OPEN, HALF_OPEN->CLOSED, HALF_OPEN->OPEN); anything else
  is a programming error and raises.  Opening requires the EWMA to
  cross ``open_threshold`` *and* ``min_samples`` distinct reports, and
  closing requires ``probes_to_close`` consecutive probe successes
  *and* the EWMA back under ``close_threshold`` — the gap between the
  two thresholds is the hysteresis band that keeps adversarial
  alternating outcome streams from flapping the breaker (at the
  defaults an alternating stream's EWMA fixed point is ~0.59, strictly
  inside the band).
- :class:`HealthRegistry` — the per-gateway collection: lazily creates
  a breaker per reported service, ticks OPEN breakers into HALF_OPEN
  when their cooldown expires, exposes the quarantine set the planner
  masks, and records every transition in a globally ordered trace whose
  SHA-256 digest is bit-identical for a fixed seed and outcome stream.

Everything is clock-agnostic: every mutating method takes ``now`` so
the same code runs against the gateway's event-loop clock and the
simulator's virtual time.  Cooldowns are jittered deterministically
from ``(seed, service_id, open_count)`` so two same-seed runs schedule
probes at identical offsets while distinct services never thunder in
herd.  Nothing here locks: each registry lives on one event loop (or
inside the single-threaded simulator).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ValidationError

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FailureDetector",
    "HealthConfig",
    "HealthRegistry",
    "TransitionRecord",
]


class BreakerState(str, Enum):
    """Lifecycle of one service's breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: The only legal state changes.  There is deliberately no CLOSED ->
#: HALF_OPEN (nothing to probe back from) and no OPEN -> CLOSED (a
#: quarantined service must prove itself through probes first).
_LEGAL_TRANSITIONS: FrozenSet[Tuple[BreakerState, BreakerState]] = frozenset(
    {
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        (BreakerState.HALF_OPEN, BreakerState.OPEN),
    }
)


@dataclass(frozen=True)
class HealthConfig:
    """Detector and breaker knobs, shared by every service's breaker."""

    #: EWMA smoothing factor: weight of the newest outcome.
    alpha: float = 0.3
    #: EWMA failure estimate at or above which a CLOSED breaker opens.
    open_threshold: float = 0.7
    #: EWMA estimate the probes must drag the detector back under
    #: before a HALF_OPEN breaker may close.  The gap to
    #: ``open_threshold`` is the hysteresis band.
    close_threshold: float = 0.35
    #: Reports required before the detector's estimate is trusted at
    #: all — a single failed first sample must not open the breaker.
    min_samples: int = 5
    #: Base quarantine after opening; the breaker turns HALF_OPEN once
    #: ``cooldown_s * (1 + jitter)`` has elapsed.
    cooldown_s: float = 1.0
    #: Upper bound of the deterministic jitter fraction drawn from
    #: ``(seed, service_id, open_count)``.
    cooldown_jitter: float = 0.5
    #: Outcomes considered while HALF_OPEN; reports beyond the quota
    #: without a verdict re-open the breaker.
    probe_quota: int = 8
    #: Consecutive probe successes required to close.
    probes_to_close: int = 3
    #: Seed for the cooldown jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValidationError(f"alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 < self.close_threshold < self.open_threshold <= 1.0:
            raise ValidationError(
                "thresholds must satisfy 0 < close < open <= 1, got "
                f"close={self.close_threshold} open={self.open_threshold}"
            )
        if self.min_samples < 1:
            raise ValidationError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.cooldown_s <= 0.0:
            raise ValidationError(
                f"cooldown_s must be positive, got {self.cooldown_s}"
            )
        if not 0.0 <= self.cooldown_jitter <= 1.0:
            raise ValidationError(
                f"cooldown_jitter must be in [0, 1], got {self.cooldown_jitter}"
            )
        if self.probes_to_close < 1:
            raise ValidationError(
                f"probes_to_close must be >= 1, got {self.probes_to_close}"
            )
        if self.probe_quota < self.probes_to_close:
            raise ValidationError(
                f"probe_quota ({self.probe_quota}) must cover "
                f"probes_to_close ({self.probes_to_close})"
            )


@dataclass(frozen=True)
class TransitionRecord:
    """One breaker state change, as it entered the global trace."""

    service_id: str
    old: str
    new: str
    at_s: float
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "service": self.service_id,
            "from": self.old,
            "to": self.new,
            "at_s": round(self.at_s, 6),
            "reason": self.reason,
        }


class FailureDetector:
    """EWMA failure estimator: 0 = always succeeding, 1 = always failing."""

    __slots__ = ("_alpha", "ewma", "samples")

    def __init__(self, alpha: float) -> None:
        self._alpha = alpha
        self.ewma = 0.0
        self.samples = 0

    def update(self, success: bool) -> float:
        x = 0.0 if success else 1.0
        self.ewma = (1.0 - self._alpha) * self.ewma + self._alpha * x
        self.samples += 1
        return self.ewma

    def reset(self) -> None:
        self.ewma = 0.0
        self.samples = 0


class CircuitBreaker:
    """One service's CLOSED -> OPEN -> HALF_OPEN state machine."""

    __slots__ = (
        "service_id",
        "_config",
        "_detector",
        "_state",
        "_opens",
        "_open_until",
        "_probes_used",
        "_probe_streak",
        "_on_transition",
    )

    def __init__(
        self,
        service_id: str,
        config: HealthConfig,
        on_transition: Optional[Callable[[TransitionRecord], None]] = None,
    ) -> None:
        self.service_id = service_id
        self._config = config
        self._detector = FailureDetector(config.alpha)
        self._state = BreakerState.CLOSED
        self._opens = 0
        self._open_until = 0.0
        self._probes_used = 0
        self._probe_streak = 0
        self._on_transition = on_transition

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def ewma(self) -> float:
        return self._detector.ewma

    @property
    def samples(self) -> int:
        return self._detector.samples

    @property
    def opens(self) -> int:
        return self._opens

    @property
    def probes_used(self) -> int:
        return self._probes_used

    @property
    def open_until(self) -> float:
        return self._open_until

    # ------------------------------------------------------------------
    def tick(self, now: float) -> None:
        """Advance time-driven transitions: OPEN -> HALF_OPEN on cooldown."""
        if self._state is BreakerState.OPEN and now >= self._open_until:
            self._probes_used = 0
            self._probe_streak = 0
            self._transition(
                BreakerState.HALF_OPEN, now, "cooldown elapsed"
            )

    def report(self, success: bool, now: float) -> None:
        """Feed one outcome sample at virtual/wall time ``now``."""
        self.tick(now)
        if self._state is BreakerState.CLOSED:
            ewma = self._detector.update(success)
            if (
                self._detector.samples >= self._config.min_samples
                and ewma >= self._config.open_threshold
            ):
                self._open(now, f"ewma {ewma:.3f} crossed threshold")
        elif self._state is BreakerState.HALF_OPEN:
            if self._probes_used >= self._config.probe_quota:
                # Quota already spent without a verdict; tick() or a
                # prior report has re-opened by then, but guard anyway.
                return
            self._probes_used += 1
            ewma = self._detector.update(success)
            if not success:
                self._probe_streak = 0
                self._open(now, "probe failed")
                return
            self._probe_streak += 1
            if (
                self._probe_streak >= self._config.probes_to_close
                and ewma <= self._config.close_threshold
            ):
                self._detector.reset()
                self._transition(
                    BreakerState.CLOSED, now, "probes recovered"
                )
            elif self._probes_used >= self._config.probe_quota:
                self._open(now, "probe quota exhausted without recovery")
        # OPEN: reports from straggling in-flight sessions are ignored —
        # the service is masked; only the cooldown earns it probes.

    def _open(self, now: float, reason: str) -> None:
        self._opens += 1
        jitter = random.Random(
            f"{self._config.seed}:{self.service_id}:{self._opens}"
        ).random()
        cooldown = self._config.cooldown_s * (
            1.0 + self._config.cooldown_jitter * jitter
        )
        self._open_until = now + cooldown
        self._transition(BreakerState.OPEN, now, reason)

    def _transition(
        self, new_state: BreakerState, now: float, reason: str
    ) -> None:
        if (self._state, new_state) not in _LEGAL_TRANSITIONS:
            raise RuntimeError(
                f"illegal breaker transition {self._state.value} -> "
                f"{new_state.value} for {self.service_id!r}"
            )
        record = TransitionRecord(
            service_id=self.service_id,
            old=self._state.value,
            new=new_state.value,
            at_s=now,
            reason=reason,
        )
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(record)

    # ------------------------------------------------------------------
    def force(self, target: BreakerState, now: float, reason: str) -> None:
        """Walk the legal transition path to ``target`` (remote applies).

        A peer's breaker verdict may arrive out of phase with this
        breaker's own history — e.g. the remote closed while we are
        still OPEN.  Rather than jump illegally, route through the
        intermediate states so the trace stays well-formed.
        """
        if self._state is target:
            return
        if target is BreakerState.OPEN:
            if self._state is BreakerState.CLOSED:
                # Trust the peer's verdict over local sample count.
                self._open(now, reason)
            else:  # HALF_OPEN
                self._probe_streak = 0
                self._open(now, reason)
        elif target is BreakerState.HALF_OPEN:
            if self._state is BreakerState.CLOSED:
                self._open(now, reason)
            self._probes_used = 0
            self._probe_streak = 0
            self._transition(BreakerState.HALF_OPEN, now, reason)
        else:  # CLOSED
            if self._state is BreakerState.OPEN:
                self._probes_used = 0
                self._probe_streak = 0
                self._transition(BreakerState.HALF_OPEN, now, reason)
            self._detector.reset()
            self._transition(BreakerState.CLOSED, now, reason)

    def snapshot(self) -> Dict[str, object]:
        return {
            "state": self._state.value,
            "ewma": round(self._detector.ewma, 6),
            "samples": self._detector.samples,
            "opens": self._opens,
            "probes_used": self._probes_used,
            "open_until_s": round(self._open_until, 6),
        }


class HealthRegistry:
    """Every service's breaker plus the globally ordered transition trace."""

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        on_transition: Optional[Callable[[TransitionRecord], None]] = None,
    ) -> None:
        self._config = config if config is not None else HealthConfig()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._transitions: List[TransitionRecord] = []
        self._generation = 0
        self._on_transition = on_transition
        self._suppress_callback = False

    # ------------------------------------------------------------------
    @property
    def config(self) -> HealthConfig:
        return self._config

    @property
    def generation(self) -> int:
        """Bumps on every transition; planners key snapshots off it."""
        return self._generation

    def breaker(self, service_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(service_id)
        if breaker is None:
            breaker = CircuitBreaker(
                service_id, self._config, self._record_transition
            )
            self._breakers[service_id] = breaker
        return breaker

    def tracked(self) -> Tuple[str, ...]:
        return tuple(sorted(self._breakers))

    def _record_transition(self, record: TransitionRecord) -> None:
        self._transitions.append(record)
        self._generation += 1
        if self._on_transition is not None and not self._suppress_callback:
            self._on_transition(record)

    # ------------------------------------------------------------------
    def report(self, service_id: str, success: bool, now: float) -> None:
        self.breaker(service_id).report(success, now)

    def apply_remote(
        self,
        service_id: str,
        state: str,
        now: float,
        reason: str = "remote",
    ) -> None:
        """Converge on a peer's breaker verdict without re-broadcasting."""
        try:
            target = BreakerState(state)
        except ValueError:
            raise ValidationError(f"unknown breaker state {state!r}") from None
        self._suppress_callback = True
        try:
            self.breaker(service_id).force(target, now, reason)
        finally:
            self._suppress_callback = False

    def quarantined(self, now: float) -> FrozenSet[str]:
        """OPEN services at ``now``, after ticking cooldowns forward."""
        for breaker in self._breakers.values():
            breaker.tick(now)
        return frozenset(
            service_id
            for service_id, breaker in self._breakers.items()
            if breaker.state is BreakerState.OPEN
        )

    def states(self, now: Optional[float] = None) -> Dict[str, BreakerState]:
        if now is not None:
            for breaker in self._breakers.values():
                breaker.tick(now)
        return {
            service_id: breaker.state
            for service_id, breaker in self._breakers.items()
        }

    def open_count(self, now: Optional[float] = None) -> int:
        return sum(
            1
            for state in self.states(now).values()
            if state is BreakerState.OPEN
        )

    # ------------------------------------------------------------------
    def transitions(self) -> Tuple[TransitionRecord, ...]:
        return tuple(self._transitions)

    def trace_digest(self) -> str:
        """SHA-256 over the ordered transition trace; seed-stable."""
        hasher = hashlib.sha256()
        for record in self._transitions:
            hasher.update(
                repr(
                    (
                        record.service_id,
                        record.old,
                        record.new,
                        round(record.at_s, 9),
                        record.reason,
                    )
                ).encode("utf-8")
            )
        return hasher.hexdigest()

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """The /health document body: per-service state plus the open set."""
        states = self.states(now)
        return {
            "generation": self._generation,
            "tracked": len(self._breakers),
            "open": sorted(
                service_id
                for service_id, state in states.items()
                if state is BreakerState.OPEN
            ),
            "half_open": sorted(
                service_id
                for service_id, state in states.items()
                if state is BreakerState.HALF_OPEN
            ),
            "services": {
                service_id: breaker.snapshot()
                for service_id, breaker in sorted(self._breakers.items())
            },
        }

    def summary(self) -> Dict[str, object]:
        """The sim-report section: snapshot plus the full trace."""
        document = self.snapshot()
        document["transitions"] = [
            record.to_dict() for record in self._transitions
        ]
        document["trace_digest"] = self.trace_digest()
        return document
