"""The asyncio planning gateway.

One :class:`PlanningGateway` is the always-on intermediary the paper
assumes (Sections 4.2–4.4): clients POST plan requests, the gateway
admits them through a per-client rate limiter and a bounded
earliest-deadline-first queue, planner workers run them through the
shared :class:`~repro.planner.batch.BatchPlanner` (plan cache +
optimize memo) on a thread pool, and every outcome — served, shed,
expired, timed out — is metered and answered.  Nothing in the admission
or planning path lets an exception escape unhandled: failure is a
response, not a crash.

Lifecycle: :meth:`run` starts the listener, installs SIGTERM/SIGINT
drain handlers (and SIGHUP reload when serving from a scenario file),
and blocks until a drain completes.  Draining stops accepting, answers
everything in flight or queued, flushes the final metrics document, and
returns it.

Hot swap: :meth:`swap_scenario` atomically replaces the serving world
(scenario + planner) under a bumped generation counter and clears the
plan cache; requests already planning finish against the old world, new
arrivals only ever see the new one.
"""

from __future__ import annotations

import asyncio
import signal
import socket
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.errors import (
    GatewayError,
    GatewayProtocolError,
    PolicyDeniedError,
    ReproError,
)
from repro.group import GroupPlanner, GroupRequest
from repro.network.placement import ServicePlacement
from repro.planner.batch import BatchPlanner, PlanRequest
from repro.planner.cache import PlanCache
from repro.policy.document import PolicyDocument
from repro.policy.engine import PolicyEngine
from repro.policy.serialization import policy_to_dict
from repro.serve.admission import DeadlineQueue, RateLimiter
from repro.serve.health import (
    BreakerState,
    HealthConfig,
    HealthRegistry,
    TransitionRecord,
)
from repro.serve.http11 import HttpRequest, read_request, render_response
from repro.serve.metrics import GatewayMetrics
from repro.serve.protocol import (
    GroupPlanEnvelope,
    decode_group_plan_request,
    decode_outcome_report,
    decode_plan_request,
    decode_reload_scenario,
    degraded_response_payload,
    encode_payload,
    error_payload,
    group_response_payload,
    plan_response_payload,
    policy_skip_payload,
)
from repro.services.catalog import ServiceCatalog
from repro.serve.sharding import (
    SHARD_HINT_HEADER,
    WORKER_ID_HEADER,
    ShardRouter,
)
from repro.workloads.io import load_scenario
from repro.workloads.scenario import Scenario

__all__ = ["GatewayConfig", "PlanningGateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Every serving knob in one place (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests); :attr:`PlanningGateway.port`
    #: reports the bound one.
    port: int = 8077
    #: Bounded depth of the deadline queue; arrivals past it are shed.
    queue_depth: int = 256
    #: Planner workers (asyncio tasks) == planning threads in the pool.
    #: A planning call that overruns its deadline is answered 504 but its
    #: thread cannot be cancelled and keeps running; while such abandoned
    #: work saturates the pool, new submissions are shed (429,
    #: ``shed_busy``) rather than queued invisibly inside the executor.
    workers: int = 4
    #: Deadline applied when a request does not carry ``deadline_ms``.
    default_deadline_ms: float = 250.0
    #: Upper bound a request may ask for.
    max_deadline_ms: float = 10_000.0
    #: Per-client token bucket refill rate; 0 disables rate limiting.
    rate_per_s: float = 0.0
    #: Per-client burst capacity.
    burst: float = 50.0
    #: ``Retry-After`` seconds suggested on queue sheds.
    shed_retry_after_s: float = 0.5
    #: Plan-cache capacity shared across all workers.
    cache_size: int = 4096
    #: Grace period for in-flight work at drain.
    drain_grace_s: float = 5.0
    #: Cap on request bodies.
    max_body_bytes: int = 1_048_576
    #: Test/bench knob: pad each successfully planned request to at least
    #: this service time, making saturation reproducible on any machine.
    service_floor_ms: float = 0.0
    #: Bind the public listener with ``SO_REUSEPORT`` so sibling worker
    #: processes can share the port (cluster mode); requires the platform
    #: to support the option.
    reuse_port: bool = False
    #: This gateway's identity inside a worker cluster.  When set, every
    #: response carries an ``x-worker-id`` header and hinted requests are
    #: metered as shard hits/misses.  ``None`` means standalone.
    worker_id: Optional[int] = None
    #: Total workers in the cluster this gateway belongs to (sizes the
    #: shard ring used for hit/miss accounting); 1 means standalone.
    cluster_size: int = 1
    #: When not ``None``, also listen on this per-worker private port
    #: (0 = ephemeral).  The cluster supervisor scrapes ``/metrics`` and
    #: affinity-aware clients route hinted requests here, bypassing the
    #: kernel's shared-port balancing.
    private_port: Optional[int] = None
    #: When set, enables the per-service failure detector and circuit
    #: breakers (:mod:`repro.serve.health`): ``POST /report`` feeds
    #: outcomes, OPEN services are masked from planning through a
    #: quarantine overlay, and infeasibility caused by quarantine (or a
    #: nearly spent deadline) answers a degraded passthrough instead of
    #: an error.  ``None`` keeps the classic fail-open behavior.
    health: Optional[HealthConfig] = None
    #: With health enabled: if the remaining deadline budget at dequeue
    #: is at or below this, answer degraded immediately rather than
    #: gamble on a planning run that would likely 504.
    degraded_budget_ms: float = 25.0


@dataclass
class _GatewayState:
    """The swap unit: one serving world under one generation number."""

    scenario: Scenario
    planner: BatchPlanner
    generation: int


@dataclass
class _QueuedRequest:
    """One admitted request waiting for (or holding) a planner worker."""

    envelope: Any
    deadline: float
    enqueued_at: float
    future: "asyncio.Future[Tuple[int, Dict[str, Any], Dict[str, str]]]"


def _new_state(
    scenario: Scenario,
    cache: PlanCache,
    generation: int,
    policy_engine: Optional[PolicyEngine] = None,
) -> _GatewayState:
    planner = BatchPlanner.for_scenario(
        scenario, cache=cache, record_trace=False, policy_engine=policy_engine
    )
    return _GatewayState(
        scenario=scenario, planner=planner, generation=generation
    )


class PlanningGateway:
    """The serving daemon; see the module docstring for the architecture."""

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[GatewayConfig] = None,
        scenario_path: Optional[str] = None,
    ) -> None:
        self._config = config if config is not None else GatewayConfig()
        if self._config.cluster_size < 1:
            raise GatewayError(
                f"cluster_size must be >= 1, got {self._config.cluster_size}"
            )
        self._cache = PlanCache(max_entries=self._config.cache_size)
        # One policy engine for the gateway's lifetime: its generation
        # counter stays monotonic across scenario swaps and policy-only
        # reloads, and its decision cache is the fast-path namespace
        # (cleared on policy swaps, untouched by selector-cache events).
        self._policy = PolicyEngine(
            scenario.policy, cache_size=self._config.cache_size
        )
        self._state = _new_state(
            scenario, self._cache, generation=1, policy_engine=self._policy
        )
        self._scenario_path = scenario_path
        self._queue = DeadlineQueue(self._config.queue_depth)
        self._limiter = RateLimiter(self._config.rate_per_s, self._config.burst)
        self._metrics = GatewayMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.workers, thread_name_prefix="planner"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._private_server: Optional[asyncio.AbstractServer] = None
        self._private_port_bound: Optional[int] = None
        self._router = (
            ShardRouter.for_cluster(self._config.cluster_size)
            if self._config.cluster_size > 1
            else None
        )
        self._workers: list = []
        self._connections: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._draining = False
        self._port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at: Optional[float] = None
        self._drain_requested: Optional[asyncio.Event] = None
        # Planning threads abandoned by a deadline timeout keep running
        # (a thread cannot be cancelled); this counts every job submitted
        # but not yet finished so _plan_one can refuse to queue behind
        # abandoned work.  Incremented on the event loop, decremented in
        # the planning thread — hence the lock.
        self._executor_lock = threading.Lock()
        self._executor_outstanding = 0
        # Service health: breakers feed the quarantine overlay.  The
        # overlay planner is a single-entry cache keyed on (generation,
        # quarantine set); a quarantine change flushes the base plan
        # cache so stale plans die with the breaker trip.
        self._health: Optional[HealthRegistry] = (
            HealthRegistry(
                self._config.health, on_transition=self._on_breaker_transition
            )
            if self._config.health is not None
            else None
        )
        self._active_quarantine: frozenset = frozenset()
        self._overlay: Optional[Tuple[Any, BatchPlanner]] = None
        # One GroupPlanner (and thus one tree cache) per live BatchPlanner:
        # the base planner and every quarantine overlay each get their own,
        # and dropping a planner (swap, quarantine change) drops its trees.
        self._group_planners: (
            "weakref.WeakKeyDictionary[BatchPlanner, GroupPlanner]"
        ) = weakref.WeakKeyDictionary()
        #: Cluster hook: a worker process forwards local breaker
        #: transitions to its supervisor through this callable.
        self.on_health_transition: Optional[Any] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> GatewayConfig:
        return self._config

    @property
    def port(self) -> int:
        if self._port is None:
            raise GatewayError("gateway not started")
        return self._port

    @property
    def private_port(self) -> Optional[int]:
        """The bound per-worker private port (``None`` unless configured)."""
        return self._private_port_bound

    @property
    def worker_id(self) -> Optional[int]:
        return self._config.worker_id

    @property
    def generation(self) -> int:
        return self._state.generation

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def metrics(self) -> GatewayMetrics:
        return self._metrics

    def metrics_document(self) -> Dict[str, Any]:
        """The current ``/metrics`` payload (repo-wide envelope).

        Uses the loop :meth:`start` ran on (``loop.time()`` is just the
        monotonic clock, valid even after the loop closes), so inspecting
        a gateway after ``asyncio.run`` returns neither warns nor mixes
        clocks from different loops.
        """
        stats = self._cache.stats
        return self._metrics.snapshot(
            generation=self._state.generation,
            uptime_s=(
                self._loop.time() - self._started_at
                if self._loop is not None and self._started_at is not None
                else 0.0
            ),
            queue_depth=len(self._queue),
            inflight=self._inflight,
            draining=self._draining,
            cache={
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
                "entries": stats.entries,
            },
            worker_id=self._config.worker_id,
        )

    # ------------------------------------------------------------------
    # Service health
    # ------------------------------------------------------------------
    @property
    def health(self) -> Optional[HealthRegistry]:
        return self._health

    def _health_now(self) -> float:
        return self._loop.time() if self._loop is not None else 0.0

    def _on_breaker_transition(self, record: TransitionRecord) -> None:
        if record.new == BreakerState.OPEN.value:
            self._metrics.bump("breaker_opens")
        elif record.new == BreakerState.CLOSED.value:
            self._metrics.bump("breaker_closes")
        if self.on_health_transition is not None:
            self.on_health_transition(record)

    def apply_remote_health(
        self, service_id: str, state: str, reason: str = "remote"
    ) -> None:
        """Converge this worker's breaker on a cluster peer's verdict."""
        if self._health is None or not service_id:
            return
        try:
            self._health.apply_remote(
                service_id, state, self._health_now(), reason=reason
            )
        except ReproError:
            # An unknown state string from a peer is dropped, not fatal.
            pass

    def health_document(self) -> Dict[str, Any]:
        """The ``GET /health`` payload: per-service breaker states."""
        if self._health is None:
            return {"status": "disabled", "enabled": False}
        document: Dict[str, Any] = {"status": "ok", "enabled": True}
        document.update(self._health.snapshot(self._health_now()))
        return document

    def _quarantine_planner(self, state: _GatewayState) -> BatchPlanner:
        """The planner to serve with, masking OPEN services.

        Tracks the quarantine set: any change flushes the base plan
        cache (stale plans must die with the breaker trip) and drops the
        overlay.  With an empty quarantine the base planner serves as
        before; otherwise a filtered catalog/placement overlay planner
        is built once per (generation, quarantine set) — with its *own*
        plan cache, because fingerprints embed generation counters that
        restart per freshly built catalog and must never collide across
        overlays.
        """
        quarantined = (
            self._health.quarantined(self._health_now())
            if self._health is not None
            else frozenset()
        )
        if quarantined != self._active_quarantine:
            self._active_quarantine = quarantined
            self._overlay = None
            self._cache.clear()
            self._metrics.bump("quarantine_rebuilds")
        if not quarantined:
            return state.planner
        key = (state.generation, quarantined)
        if self._overlay is not None and self._overlay[0] == key:
            return self._overlay[1]
        scenario = state.scenario
        alive = [
            descriptor
            for descriptor in scenario.catalog
            if descriptor.service_id not in quarantined
        ]
        catalog = ServiceCatalog(alive)
        mapping = {
            service_id: node_id
            for service_id, node_id in scenario.placement.as_dict().items()
            if service_id in catalog
        }
        placement = ServicePlacement(scenario.placement.topology, mapping)
        planner = BatchPlanner(
            registry=scenario.registry,
            parameters=scenario.parameters,
            catalog=catalog,
            placement=placement,
            cache=PlanCache(max_entries=self._config.cache_size),
            max_workers=1,
            record_trace=False,
            optimize_memo=state.planner.optimize_memo,
            # Policy still applies under quarantine: a zero-hop skip
            # needs no services, and a forced tier filters whatever
            # catalog survives the mask.
            policy_engine=self._policy,
        )
        self._overlay = (key, planner)
        return planner

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _reuseport_socket(self) -> socket.socket:
        """A bound (not yet listening) ``SO_REUSEPORT`` listener socket."""
        if not hasattr(socket, "SO_REUSEPORT"):
            raise GatewayError(
                "SO_REUSEPORT is not available on this platform"
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self._config.host, self._config.port))
        except OSError:
            sock.close()
            raise
        return sock

    async def start(self, sock: Optional[socket.socket] = None) -> None:
        """Bind the listener(s) and launch the planner workers.

        ``sock`` lets a cluster worker serve an already-bound listening
        socket inherited from its supervisor (the no-``SO_REUSEPORT``
        fallback).  With ``config.reuse_port`` set the gateway instead
        binds its own socket to the shared ``(host, port)``, letting the
        kernel spread accepts across sibling workers.  A configured
        ``private_port`` brings up a second listener running the same
        dispatch — the per-worker address used for metrics scraping and
        shard-affinity routing.
        """
        if self._server is not None:
            raise GatewayError("gateway already started")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._started_at = loop.time()
        self._drain_requested = asyncio.Event()
        self._workers = [
            loop.create_task(self._worker()) for _ in range(self._config.workers)
        ]
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock
            )
        elif self._config.reuse_port:
            self._server = await asyncio.start_server(
                self._on_connection, sock=self._reuseport_socket()
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self._config.host,
                port=self._config.port,
            )
        self._port = self._server.sockets[0].getsockname()[1]
        if self._config.private_port is not None:
            self._private_server = await asyncio.start_server(
                self._on_connection,
                host=self._config.host,
                port=self._config.private_port,
            )
            self._private_port_bound = (
                self._private_server.sockets[0].getsockname()[1]
            )

    def request_drain(self) -> None:
        """Ask :meth:`run` to drain; safe to call from a signal handler."""
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run(
        self,
        install_signals: bool = True,
        on_ready: Optional[Any] = None,
        sock: Optional[socket.socket] = None,
    ) -> Dict[str, Any]:
        """Serve until a drain is requested; returns the final metrics.

        ``on_ready`` (a callable taking this gateway) fires once the
        listener is bound — the CLI uses it to announce the port.
        ``sock`` is forwarded to :meth:`start` (cluster workers serve a
        supervisor-inherited socket).
        """
        await self.start(sock=sock)
        if on_ready is not None:
            on_ready(self)
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_drain)
            if self._scenario_path is not None:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: loop.create_task(self._reload_from_path()),
                )
        try:
            await self._drain_requested.wait()
        finally:
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)
                if self._scenario_path is not None:
                    loop.remove_signal_handler(signal.SIGHUP)
        return await self.drain()

    async def drain(self) -> Dict[str, Any]:
        """Stop accepting, finish in-flight work, answer the rest, flush.

        Queued requests that cannot be served inside ``drain_grace_s``
        are answered 503 rather than dropped; the returned document is
        the flushed final metrics snapshot.
        """
        self._draining = True
        for server in (self._server, self._private_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        loop = asyncio.get_running_loop()
        grace_ends = loop.time() + self._config.drain_grace_s
        while (len(self._queue) or self._inflight) and loop.time() < grace_ends:
            await asyncio.sleep(0.01)
        for item in self._queue.drain_pending():
            self._metrics.bump("rejected_draining")
            self._resolve(
                item,
                503,
                error_payload("draining", "gateway drained before planning"),
            )
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        # Give connection handlers one scheduling round to flush the
        # resolved futures, then sever whatever is still open.
        deadline = loop.time() + 1.0
        while self._connections and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=False)
        return self.metrics_document()

    # ------------------------------------------------------------------
    # Hot catalog / scenario swap
    # ------------------------------------------------------------------
    def swap_scenario(self, scenario: Scenario) -> Dict[str, Any]:
        """Atomically install a new serving world.

        The state reference flips in one assignment on the event loop, so
        a request observes either the old world or the new one, never a
        mix.  The generation counter bumps and the plan cache is cleared:
        entries for the old world are unreachable anyway (fingerprints
        embed catalog/topology content), clearing just reclaims them
        eagerly and meters the invalidation.
        """
        self._state = _new_state(
            scenario,
            self._cache,
            generation=self._state.generation + 1,
            policy_engine=self._policy,
        )
        self._overlay = None
        invalidated = self._cache.clear()
        # The active policy follows the active scenario: a full swap
        # installs the new scenario's policy (possibly none), replacing
        # any earlier policy-only hot swap.
        self._policy.swap(scenario.policy)
        self._metrics.bump("reloads")
        return {
            "status": "reloaded",
            "scenario": scenario.name,
            "generation": self._state.generation,
            "invalidated": invalidated,
            "policy": (
                scenario.policy.name if scenario.policy is not None else None
            ),
            "policy_generation": self._policy.generation,
        }

    async def _reload_from_path(self) -> None:
        """SIGHUP handler: re-read the scenario file the daemon came from."""
        loop = asyncio.get_running_loop()
        try:
            scenario = await loop.run_in_executor(
                None, load_scenario, self._scenario_path
            )
        except (OSError, ReproError):
            self._metrics.bump("errors")
            return
        self.swap_scenario(scenario)

    async def reload_from_body(self, body: bytes) -> Dict[str, Any]:
        """Decode one ``/admin/reload`` body and hot-swap to it.

        The decode/build runs off-loop (scenario construction can be
        expensive); the swap itself is the same atomic flip as
        :meth:`swap_scenario`.  Raises
        :class:`~repro.errors.ValidationError` on malformed bodies — the
        HTTP endpoint maps that to a 400, the cluster worker's control
        pipe meters it as an error.
        """
        loop = asyncio.get_running_loop()
        decoded = await loop.run_in_executor(
            None, decode_reload_scenario, body
        )
        if isinstance(decoded, PolicyDocument):
            return self.swap_policy(decoded)
        return self.swap_scenario(decoded)

    def swap_policy(self, document: Optional[PolicyDocument]) -> Dict[str, Any]:
        """Hot-swap only the policy document.

        Bumps the policy generation and clears only the fast-path
        decision cache; the selector's plan cache (and its hit streaks)
        survive untouched, and the scenario generation does not move.
        """
        invalidated = self._policy.swap(document)
        self._metrics.bump("reloads")
        return {
            "status": "reloaded",
            "policy": document.name if document is not None else None,
            "generation": self._state.generation,
            "policy_generation": self._policy.generation,
            "invalidated": invalidated,
        }

    def policy_document(self) -> Dict[str, Any]:
        """The ``GET /policy`` payload: active document plus engine stats."""
        payload: Dict[str, Any] = {"status": "ok"}
        payload.update(self._policy.stats())
        document = self._policy.document
        payload["document"] = (
            policy_to_dict(document) if document is not None else None
        )
        return payload

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _identity_headers(
        self, headers: Optional[Dict[str, str]] = None
    ) -> Dict[str, str]:
        """Response headers plus this worker's identity (cluster mode).

        Every response a cluster worker writes carries ``x-worker-id`` so
        clients and the load generator can attribute requests to the
        process that actually served them; standalone gateways add
        nothing.
        """
        if self._config.worker_id is None:
            return headers or {}
        merged = dict(headers or {})
        merged[WORKER_ID_HEADER] = str(self._config.worker_id)
        return merged

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._metrics.bump("connections")
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self._config.max_body_bytes
                    )
                except GatewayProtocolError as exc:
                    self._metrics.bump("protocol_errors")
                    writer.write(
                        render_response(
                            400,
                            encode_payload(error_payload("invalid", str(exc))),
                            headers=self._identity_headers(),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    status, payload, headers = await self._dispatch(request)
                except (ConnectionError, asyncio.CancelledError):
                    raise
                except Exception as exc:
                    # Dispatch must never kill the connection task: anything
                    # the typed 400/422 paths missed is metered and answered
                    # 500 so the client always gets a response.
                    self._metrics.bump("errors")
                    status = 500
                    payload = error_payload(
                        "error", f"{type(exc).__name__}: {exc}"
                    )
                    headers = {}
                keep_alive = (
                    request.keep_alive and not self._draining and status != 500
                )
                writer.write(
                    render_response(
                        status,
                        encode_payload(payload),
                        headers=self._identity_headers(headers),
                        keep_alive=keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        route = (request.method, request.path)
        if route == ("POST", "/plan"):
            return await self._handle_plan(request)
        if route == ("POST", "/plan-group"):
            return await self._handle_plan_group(request)
        if route == ("POST", "/admin/reload"):
            return await self._handle_reload(request)
        if route == ("POST", "/report"):
            return self._handle_report(request)
        if route == ("GET", "/health"):
            return 200, self.health_document(), {}
        if route == ("GET", "/healthz"):
            return 200, {"status": "alive", "generation": self.generation}, {}
        if route == ("GET", "/readyz"):
            if self._draining:
                return 503, error_payload("draining"), {}
            if self._health is not None:
                states = self._health.states(self._health_now())
                open_count = sum(
                    1
                    for state in states.values()
                    if state is BreakerState.OPEN
                )
                if states and open_count * 2 > len(states):
                    # More than half the tracked services are
                    # quarantined: this gateway can mostly only degrade,
                    # so tell load balancers to route around it.
                    return (
                        503,
                        error_payload(
                            "degraded",
                            f"{open_count}/{len(states)} breakers open",
                        ),
                        {},
                    )
            return 200, {"status": "ready", "generation": self.generation}, {}
        if route == ("GET", "/metrics"):
            return 200, self.metrics_document(), {}
        if route == ("GET", "/policy"):
            return 200, self.policy_document(), {}
        if request.path in ("/plan", "/plan-group", "/admin/reload",
                            "/healthz", "/readyz", "/metrics", "/report",
                            "/health", "/policy"):
            return 405, error_payload("invalid", "method not allowed"), {}
        return 404, error_payload("invalid", f"no route {request.path!r}"), {}

    def _handle_report(
        self, request: HttpRequest
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """``POST /report``: feed per-service session outcomes to breakers."""
        if self._health is None:
            return 200, {"status": "disabled", "accepted": 0}, {}
        try:
            _client, samples = decode_outcome_report(request.body)
        except ReproError as exc:
            self._metrics.bump("invalid")
            return 400, error_payload("invalid", str(exc)), {}
        now = self._health_now()
        catalog = self._state.scenario.catalog
        accepted = 0
        ignored = 0
        for service_id, success in samples:
            # Unknown services (stale clients, old catalog generations)
            # are counted but never grow the breaker table unboundedly.
            if service_id in catalog:
                self._health.report(service_id, success, now)
                accepted += 1
            else:
                ignored += 1
        if accepted:
            self._metrics.bump("reports", accepted)
        return (
            200,
            {
                "status": "ok",
                "accepted": accepted,
                "ignored": ignored,
                "open": sorted(self._health.quarantined(now)),
            },
            {},
        )

    async def _handle_reload(
        self, request: HttpRequest
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if self._draining:
            return 503, error_payload("draining"), {}
        try:
            summary = await self.reload_from_body(request.body)
        except ReproError as exc:
            self._metrics.bump("invalid")
            return 400, error_payload("invalid", str(exc)), {}
        return 200, summary, {}

    async def _handle_plan(
        self, request: HttpRequest
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        return await self._admit_plan(request, decode_plan_request)

    async def _handle_plan_group(
        self, request: HttpRequest
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """``POST /plan-group``: one shared tree for a receiver-class set.

        Admission is identical to ``/plan`` (same limiter, same deadline
        queue, same sheds); only the decoder and the planning branch in
        :meth:`_plan_one` differ, keyed on the envelope type.
        """
        return await self._admit_plan(request, decode_group_plan_request)

    async def _admit_plan(
        self, request: HttpRequest, decode: Any
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        loop = asyncio.get_running_loop()
        now = loop.time()
        if self._draining:
            self._metrics.bump("rejected_draining")
            return 503, error_payload("draining"), {}
        try:
            envelope = decode(
                request.body,
                self._state.scenario.registry,
                self._config.max_deadline_ms,
            )
        except ReproError as exc:
            self._metrics.bump("invalid")
            return 400, error_payload("invalid", str(exc)), {}
        self._metrics.bump("received")
        hint = request.headers.get(SHARD_HINT_HEADER)
        if hint and self._router is not None and self._config.worker_id is not None:
            if self._router.route(hint) == self._config.worker_id:
                self._metrics.bump("shard_hits")
            else:
                self._metrics.bump("shard_misses")

        admitted, retry_after = self._limiter.check(envelope.client, now)
        if not admitted:
            self._metrics.bump("shed_rate")
            return (
                429,
                error_payload("rate_limited", f"client {envelope.client!r}"),
                {"retry-after": f"{retry_after:.3f}"},
            )

        deadline_ms = (
            envelope.deadline_ms
            if envelope.deadline_ms is not None
            else self._config.default_deadline_ms
        )
        deadline = now + deadline_ms / 1000.0
        item = _QueuedRequest(
            envelope=envelope,
            deadline=deadline,
            enqueued_at=now,
            future=loop.create_future(),
        )
        if not self._queue.try_put(deadline, item):
            self._metrics.bump("shed_queue")
            return (
                429,
                error_payload("shed", "deadline queue full"),
                {"retry-after": f"{self._config.shed_retry_after_s:.3f}"},
            )
        status, payload, headers = await item.future
        self._metrics.latency_ms.observe((loop.time() - now) * 1000.0)
        return status, payload, headers

    # ------------------------------------------------------------------
    # Planner workers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(
        item: _QueuedRequest,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if not item.future.done():
            item.future.set_result((status, payload, headers or {}))

    def _to_plan_request(
        self, state: _GatewayState, envelope: Any
    ) -> PlanRequest:
        scenario = state.scenario
        return PlanRequest(
            content=envelope.content or scenario.content,
            device=envelope.device or scenario.device,
            user=envelope.user or scenario.user,
            sender_node=envelope.sender or scenario.sender_node,
            receiver_node=envelope.receiver or scenario.receiver_node,
            context=(
                envelope.context
                if envelope.context is not None
                else scenario.context
            ),
        )

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                deadline, item = await self._queue.get()
            except asyncio.CancelledError:
                raise
            if item.future.done():
                continue
            now = loop.time()
            queue_ms = (now - item.enqueued_at) * 1000.0
            self._metrics.queue_wait_ms.observe(queue_ms)
            if now >= deadline:
                self._metrics.bump("expired")
                self._resolve(
                    item,
                    504,
                    error_payload(
                        "timeout",
                        "deadline expired while queued",
                        queue_ms=round(queue_ms, 3),
                    ),
                )
                continue
            self._inflight += 1
            try:
                await self._plan_one(loop, item, deadline, queue_ms)
            except asyncio.CancelledError:
                self._resolve(
                    item, 503, error_payload("draining", "worker cancelled")
                )
                raise
            except ReproError as exc:
                self._metrics.bump("unplannable")
                self._resolve(item, 422, error_payload("unplannable", str(exc)))
            except Exception as exc:  # never let a request kill the worker
                self._metrics.bump("errors")
                self._resolve(
                    item,
                    500,
                    error_payload("error", f"{type(exc).__name__}: {exc}"),
                )
            finally:
                self._inflight -= 1

    def _run_plan(self, planner: BatchPlanner, plan_request: PlanRequest):
        """Runs in a planning thread; pairs the increment in :meth:`_plan_one`.

        The decrement lives here (not on the awaiting side) because a
        deadline timeout abandons the await while this thread keeps
        running — the job is outstanding until the thread actually ends.
        """
        try:
            return planner.plan_with_policy_info(plan_request)
        finally:
            with self._executor_lock:
                self._executor_outstanding -= 1

    def _run_group_plan(
        self, planner: GroupPlanner, group_request: GroupRequest
    ):
        """Group twin of :meth:`_run_plan`; same outstanding accounting."""
        try:
            return planner.plan_with_cache_info(group_request)
        finally:
            with self._executor_lock:
                self._executor_outstanding -= 1

    def _group_planner_for(self, planner: BatchPlanner) -> GroupPlanner:
        """The tree-cache-owning group planner bound to ``planner``.

        Keyed weakly on the batch planner itself so quarantine overlays
        (fresh planner per quarantine set) and hot swaps each get their
        own tree cache, and retired planners take their trees with them.
        """
        group = self._group_planners.get(planner)
        if group is None:
            group = GroupPlanner(planner)
            self._group_planners[planner] = group
        return group

    def _to_group_request(
        self, state: _GatewayState, envelope: GroupPlanEnvelope
    ) -> GroupRequest:
        scenario = state.scenario
        return GroupRequest(
            content=envelope.content or scenario.content,
            user=envelope.user or scenario.user,
            sender_node=envelope.sender or scenario.sender_node,
            receiver_node=envelope.receiver or scenario.receiver_node,
            receivers=envelope.receivers,
            context=(
                envelope.context
                if envelope.context is not None
                else scenario.context
            ),
        )

    def _resolve_degraded(
        self,
        item: _QueuedRequest,
        state: _GatewayState,
        reason: str,
        queue_ms: float,
        plan_ms: float = 0.0,
    ) -> None:
        """Answer a zero-hop passthrough instead of a 5xx (health mode)."""
        self._metrics.bump("degraded")
        self._resolve(
            item,
            200,
            degraded_response_payload(
                reason=reason,
                generation=state.generation,
                queue_ms=queue_ms,
                plan_ms=plan_ms,
                quarantined=sorted(self._active_quarantine),
            ),
        )

    async def _plan_one(
        self,
        loop: asyncio.AbstractEventLoop,
        item: _QueuedRequest,
        deadline: float,
        queue_ms: float,
    ) -> None:
        state = self._state
        health_on = self._health is not None
        is_group = isinstance(item.envelope, GroupPlanEnvelope)
        if (
            health_on
            and not is_group
            and (deadline - loop.time()) * 1000.0
            <= self._config.degraded_budget_ms
        ):
            # The budget is nearly spent: a planning run would most
            # likely 504.  Ship the source variant unadapted instead.
            # Group requests never degrade: a per-session passthrough has
            # no meaning for a class set, so they 504 honestly instead.
            self._resolve_degraded(
                item, state, "deadline budget nearly spent", queue_ms
            )
            return
        planner = self._quarantine_planner(state) if health_on else state.planner
        quarantined = self._active_quarantine if health_on else frozenset()
        if is_group:
            await self._plan_group_one(
                loop, item, deadline, queue_ms, state, planner
            )
            return
        plan_request = self._to_plan_request(state, item.envelope)
        with self._executor_lock:
            saturated = self._executor_outstanding >= self._config.workers
            if not saturated:
                self._executor_outstanding += 1
        if saturated:
            # Every planning thread is busy — which, when this worker is
            # free to submit, means threads abandoned past their deadline
            # (``asyncio.wait_for`` cannot cancel a running thread).
            # Submitting would queue behind work nobody is waiting for and
            # burn this request's deadline invisibly; shed explicitly
            # instead so the executor queue never grows.
            self._metrics.bump("shed_busy")
            self._resolve(
                item,
                429,
                error_payload(
                    "shed", "planner pool saturated by overrunning work"
                ),
                {"retry-after": f"{self._config.shed_retry_after_s:.3f}"},
            )
            return
        started = loop.time()
        try:
            plan, cache_hit, decision = await asyncio.wait_for(
                loop.run_in_executor(
                    self._executor,
                    self._run_plan,
                    planner,
                    plan_request,
                ),
                timeout=deadline - started,
            )
        except asyncio.TimeoutError:
            self._metrics.bump("timeouts")
            if health_on:
                self._resolve_degraded(
                    item,
                    state,
                    "planning overran the deadline",
                    queue_ms,
                    plan_ms=(loop.time() - started) * 1000.0,
                )
                return
            self._resolve(
                item,
                504,
                error_payload("timeout", "planning overran the deadline"),
            )
            return
        except PolicyDeniedError as exc:
            # A deny is an explicit policy verdict, never degraded over:
            # this arm must sit before the generic ReproError handler.
            self._metrics.bump("policy_denied")
            self._resolve(
                item,
                403,
                error_payload("denied", str(exc), rule=exc.rule_id),
            )
            return
        except ReproError:
            if quarantined:
                # The masked catalog is what broke planning; that is a
                # quality event, not a client error.
                self._resolve_degraded(
                    item,
                    state,
                    "quarantine left no plannable catalog",
                    queue_ms,
                    plan_ms=(loop.time() - started) * 1000.0,
                )
                return
            raise
        plan_ms = (loop.time() - started) * 1000.0
        floor_s = self._config.service_floor_ms / 1000.0
        if floor_s > 0:
            pad = floor_s - (loop.time() - started)
            if pad > 0:
                await asyncio.sleep(pad)
        if decision is not None and decision.kind == "skip":
            # Zero-hop fast path: the selector never ran.  Metered apart
            # from "planned" (like degraded answers) so the counter split
            # mirrors the path split.
            self._metrics.bump("policy_fast_path")
            self._metrics.satisfaction.observe(plan.result.satisfaction)
            self._resolve(
                item,
                200,
                policy_skip_payload(
                    plan,
                    cache_hit=cache_hit,
                    generation=state.generation,
                    policy_generation=self._policy.generation,
                    queue_ms=queue_ms,
                    plan_ms=plan_ms,
                ),
            )
            return
        if not plan.success and quarantined:
            # Feasible at full quality before the breaker trip, not
            # under quarantine: degrade rather than answer infeasible.
            self._resolve_degraded(
                item,
                state,
                "no feasible full-quality path outside quarantine",
                queue_ms,
                plan_ms=plan_ms,
            )
            return
        self._metrics.bump("planned")
        if plan.success:
            self._metrics.satisfaction.observe(plan.result.satisfaction)
        else:
            self._metrics.bump("infeasible")
        payload = plan_response_payload(
            plan,
            cache_hit=cache_hit,
            generation=state.generation,
            queue_ms=queue_ms,
            plan_ms=plan_ms,
        )
        if decision is not None and decision.kind == "force_tier":
            self._metrics.bump("policy_tier_forced")
            payload["policy_rule"] = decision.rule_id
            payload["forced_tier"] = decision.tier
        self._resolve(item, 200, payload)

    async def _plan_group_one(
        self,
        loop: asyncio.AbstractEventLoop,
        item: _QueuedRequest,
        deadline: float,
        queue_ms: float,
        state: _GatewayState,
        planner: BatchPlanner,
    ) -> None:
        """Plan one ``/plan-group`` request on a planning thread.

        Quarantine still applies — the group planner sits on whatever
        planner :meth:`_quarantine_planner` chose — but group answers are
        never degraded: classes the (possibly masked) catalog cannot
        serve surface as per-class fallbacks inside a 200, a planning
        overrun is an honest 504, and a planner-level failure is a typed
        422 like any other unplannable request.
        """
        group_request = self._to_group_request(state, item.envelope)
        group_planner = self._group_planner_for(planner)
        with self._executor_lock:
            saturated = self._executor_outstanding >= self._config.workers
            if not saturated:
                self._executor_outstanding += 1
        if saturated:
            # Same reasoning as the per-session path: never queue behind
            # threads abandoned past their deadline.
            self._metrics.bump("shed_busy")
            self._resolve(
                item,
                429,
                error_payload(
                    "shed", "planner pool saturated by overrunning work"
                ),
                {"retry-after": f"{self._config.shed_retry_after_s:.3f}"},
            )
            return
        started = loop.time()
        try:
            plan, cache_hit = await asyncio.wait_for(
                loop.run_in_executor(
                    self._executor,
                    self._run_group_plan,
                    group_planner,
                    group_request,
                ),
                timeout=deadline - started,
            )
        except asyncio.TimeoutError:
            self._metrics.bump("timeouts")
            self._resolve(
                item,
                504,
                error_payload("timeout", "planning overran the deadline"),
            )
            return
        plan_ms = (loop.time() - started) * 1000.0
        floor_s = self._config.service_floor_ms / 1000.0
        if floor_s > 0:
            pad = floor_s - (loop.time() - started)
            if pad > 0:
                await asyncio.sleep(pad)
        self._metrics.bump("groups")
        self._metrics.bump("group_sessions", plan.total_sessions)
        self._metrics.bump("group_branches", len(plan.tree.branches))
        self._metrics.bump("group_fallbacks", plan.fallback_count)
        self._metrics.bump(
            "group_saved_bps", int(round(plan.tree.saved_bandwidth_bps()))
        )
        for branch in plan.tree.branches:
            self._metrics.satisfaction.observe(branch.satisfaction)
        self._resolve(
            item,
            200,
            group_response_payload(
                plan,
                cache_hit=cache_hit,
                generation=state.generation,
                queue_ms=queue_ms,
                plan_ms=plan_ms,
            ),
        )
