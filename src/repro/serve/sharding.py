"""Device-class shard affinity: hints and the consistent-hash ring.

Plan-cache locality across a worker cluster comes from routing every
request of one *device class* to the same worker: the class dominates the
request fingerprint (the other profiles default to the serving
scenario's), so a worker that owns a class serves it from cache after the
first miss.  Two pieces implement that:

- :func:`device_shard_hint` — a stable hex digest of the device profile's
  ``cache_key()``, the same component the plan fingerprint hashes.  The
  client computes it and sends it as the ``x-shard-hint`` header; a
  worker receiving a hinted request can tell whether it owns the shard
  (``shard_hits`` / ``shard_misses`` counters).
- :class:`ShardRouter` — a consistent-hash ring over worker ids with
  virtual nodes.  Hints spread evenly across workers, and adding or
  removing one worker moves only ~1/N of the hint space, so a restart
  does not flush every worker's cache affinity.

Routing is *advisory*: a request that lands on the wrong worker (no hint,
stale routing table, worker restarting) is planned correctly there — the
caches are simply colder.  Correctness never depends on the ring.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ValidationError
from repro.profiles.device import DeviceProfile

__all__ = [
    "SHARD_HINT_HEADER",
    "WORKER_ID_HEADER",
    "device_shard_hint",
    "ShardRouter",
]

#: Request header carrying the client-computed shard hint.
SHARD_HINT_HEADER = "x-shard-hint"
#: Response header naming the worker that answered.
WORKER_ID_HEADER = "x-worker-id"

#: Virtual nodes per worker on the ring.  64 keeps the worst-case load
#: imbalance under a few percent for small clusters while the ring stays
#: tiny (N * 64 points).
DEFAULT_REPLICAS = 64


def _ring_point(label: str) -> int:
    """A 64-bit point on the ring for ``label`` (stable across processes)."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


def device_shard_hint(device: DeviceProfile) -> str:
    """The shard hint for one device class.

    Derived from ``device.cache_key()`` — the exact device-class component
    of the plan fingerprint — so two devices that fingerprint identically
    always hint identically, and any profile difference that would change
    the plan-cache key also changes the hint.
    """
    digest = hashlib.sha256(repr(device.cache_key()).encode("utf-8"))
    return digest.hexdigest()[:16]


class ShardRouter:
    """A consistent-hash routing table: shard hint → worker id.

    Deterministic in the worker-id set alone — every participant
    (supervisor, workers, affinity-aware clients) builds bit-identical
    rings from the worker count, so no ring state needs distributing
    beyond the worker list itself.
    """

    def __init__(
        self,
        worker_ids: Sequence[int],
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        ids = list(worker_ids)
        if not ids:
            raise ValidationError("ShardRouter needs at least one worker id")
        if len(set(ids)) != len(ids):
            raise ValidationError(f"duplicate worker ids: {sorted(ids)}")
        if replicas < 1:
            raise ValidationError("ShardRouter needs replicas >= 1")
        self._worker_ids: Tuple[int, ...] = tuple(sorted(int(w) for w in ids))
        self._replicas = int(replicas)
        points: List[Tuple[int, int]] = []
        for worker_id in self._worker_ids:
            for replica in range(self._replicas):
                points.append(
                    (_ring_point(f"worker-{worker_id}#{replica}"), worker_id)
                )
        # Ties on a point are broken by worker id so the ring is a pure
        # function of the id set regardless of insertion order.
        points.sort()
        self._points: List[int] = [point for point, _ in points]
        self._owners: List[int] = [owner for _, owner in points]

    @classmethod
    def for_cluster(
        cls, workers: int, replicas: int = DEFAULT_REPLICAS
    ) -> "ShardRouter":
        """The ring for a cluster of ``workers`` processes (ids 0..N-1)."""
        if workers < 1:
            raise ValidationError("cluster needs at least one worker")
        return cls(range(workers), replicas=replicas)

    @property
    def worker_ids(self) -> Tuple[int, ...]:
        return self._worker_ids

    def route(self, hint: str) -> int:
        """The worker id owning ``hint`` (first ring point clockwise)."""
        point = _ring_point(hint)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def distribution(self, hints: Sequence[str]) -> Dict[int, int]:
        """How many of ``hints`` each worker owns (workers with 0 included)."""
        counts: Dict[int, int] = {worker_id: 0 for worker_id in self._worker_ids}
        for hint in hints:
            counts[self.route(hint)] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        """The wire form served by the supervisor's ``/cluster`` endpoint."""
        return {
            "worker_ids": list(self._worker_ids),
            "replicas": self._replicas,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardRouter":
        if not isinstance(data, Mapping):
            raise ValidationError("shard ring document must be a mapping")
        worker_ids = data.get("worker_ids")
        if not isinstance(worker_ids, Sequence) or isinstance(
            worker_ids, (str, bytes)
        ):
            raise ValidationError("shard ring 'worker_ids' must be a list")
        for worker_id in worker_ids:
            if not isinstance(worker_id, int) or isinstance(worker_id, bool):
                raise ValidationError(
                    f"shard ring worker ids must be ints, got {worker_id!r}"
                )
        replicas = data.get("replicas", DEFAULT_REPLICAS)
        if not isinstance(replicas, int) or isinstance(replicas, bool):
            raise ValidationError("shard ring 'replicas' must be an int")
        return cls(worker_ids, replicas=replicas)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardRouter):
            return NotImplemented
        return (
            self._worker_ids == other._worker_ids
            and self._replicas == other._replicas
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardRouter(workers={self._worker_ids}, "
            f"replicas={self._replicas})"
        )
