"""The gateway's JSON request/response vocabulary.

A plan request is a JSON object carrying at minimum a client id; any of
the four request-side profiles and the endpoints may be supplied inline
(decoded via :mod:`repro.profiles.serialization`) and default to the
serving scenario's own.  Decoding is strict: anything malformed raises
:class:`~repro.errors.ValidationError`, which the gateway maps to a 400 —
a planner worker must never see an undecoded document.

Response payloads all carry a ``status`` discriminator (``ok``,
``infeasible``, ``shed``, ``rate_limited``, ``timeout``, ``invalid``,
``unplannable``, ``draining``, ``error``) so clients can switch on one
field regardless of HTTP status code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ValidationError
from repro.formats.registry import FormatRegistry
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.serialization import profile_from_dict
from repro.profiles.user import UserProfile
from repro.runtime.session import SessionPlan

__all__ = [
    "GroupPlanEnvelope",
    "PlanRequestEnvelope",
    "decode_group_plan_request",
    "decode_outcome_report",
    "decode_plan_request",
    "decode_reload_scenario",
    "degraded_response_payload",
    "group_response_payload",
    "plan_response_payload",
    "policy_skip_payload",
    "zero_hop_payload",
    "error_payload",
    "encode_payload",
]


@dataclass(frozen=True)
class PlanRequestEnvelope:
    """One decoded plan request, before scenario defaults are applied."""

    client: str
    deadline_ms: Optional[float]
    device: Optional[DeviceProfile]
    user: Optional[UserProfile]
    content: Optional[ContentProfile]
    context: Optional[ContextProfile]
    sender: Optional[str]
    receiver: Optional[str]


def _decode_profile(
    data: Any,
    expected_tag: str,
    registry: FormatRegistry,
) -> Any:
    if not isinstance(data, Mapping):
        raise ValidationError(
            f"{expected_tag!r} field must be a profile object, "
            f"got {type(data).__name__}"
        )
    if data.get("profile") != expected_tag:
        raise ValidationError(
            f"{expected_tag!r} field carries profile tag "
            f"{data.get('profile')!r}"
        )
    return profile_from_dict(data, registry)


def decode_plan_request(
    body: bytes,
    registry: FormatRegistry,
    max_deadline_ms: float,
) -> PlanRequestEnvelope:
    """Parse and validate one ``POST /plan`` body."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(data, Mapping):
        raise ValidationError("request body must be a JSON object")

    client = data.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ValidationError("'client' must be a non-empty string")

    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ):
            raise ValidationError("'deadline_ms' must be a number")
        if not 0 < deadline_ms <= max_deadline_ms:
            raise ValidationError(
                f"'deadline_ms' must lie in (0, {max_deadline_ms:g}]"
            )
        deadline_ms = float(deadline_ms)

    def profile_or_none(field: str) -> Any:
        value = data.get(field)
        if value is None:
            return None
        return _decode_profile(value, field, registry)

    for endpoint in ("sender", "receiver"):
        value = data.get(endpoint)
        if value is not None and not isinstance(value, str):
            raise ValidationError(f"{endpoint!r} must be a node id string")

    return PlanRequestEnvelope(
        client=client,
        deadline_ms=deadline_ms,
        device=profile_or_none("device"),
        user=profile_or_none("user"),
        content=profile_or_none("content"),
        context=profile_or_none("context"),
        sender=data.get("sender"),
        receiver=data.get("receiver"),
    )


@dataclass(frozen=True)
class GroupPlanEnvelope:
    """One decoded ``POST /plan-group`` body, before scenario defaults."""

    client: str
    deadline_ms: Optional[float]
    receivers: tuple
    user: Optional[UserProfile]
    content: Optional[ContentProfile]
    context: Optional[ContextProfile]
    sender: Optional[str]
    receiver: Optional[str]


def decode_group_plan_request(
    body: bytes,
    registry: FormatRegistry,
    max_deadline_ms: float,
) -> GroupPlanEnvelope:
    """Parse and validate one ``POST /plan-group`` body.

    The shape is the plan-request envelope minus the single ``device``
    field plus a mandatory ``receivers`` array of receiver classes
    (decoded — with duplicate rejection — by
    :func:`repro.profiles.serialization.group_receivers_from_list`).
    """
    # The common fields share the /plan decoder so both endpoints reject
    # identical malformations with identical messages; /plan tolerates a
    # missing body ({} plans the scenario defaults), so the only extra
    # strictness here is the receivers array.
    from repro.profiles.serialization import group_receivers_from_list

    base = decode_plan_request(body, registry, max_deadline_ms)
    if base.device is not None:
        raise ValidationError(
            "group requests carry receiver devices in 'receivers', "
            "not a top-level 'device'"
        )
    data = json.loads(body.decode("utf-8"))
    receivers = group_receivers_from_list(
        _require_key(data, "receivers", "group request")
    )
    return GroupPlanEnvelope(
        client=base.client,
        deadline_ms=base.deadline_ms,
        receivers=receivers,
        user=base.user,
        content=base.content,
        context=base.context,
        sender=base.sender,
        receiver=base.receiver,
    )


def _require_key(data: Mapping, key: str, what: str) -> Any:
    if key not in data:
        raise ValidationError(f"{what} is missing required key {key!r}")
    return data[key]


def decode_reload_scenario(body: bytes):
    """Parse and build the scenario named by one ``/admin/reload`` body.

    Accepts either a full ``repro-scenario`` document or a
    ``{"synthetic": {...}}`` generation spec; anything else raises
    :class:`~repro.errors.ValidationError`.  Synchronous and potentially
    expensive (scenario construction) — callers on an event loop run it
    in an executor.  Shared by the single-process gateway's reload
    endpoint and the cluster supervisor's fan-out validation, so both
    reject exactly the same bodies with exactly the same messages.
    """
    # Imported here, not at module top: repro.workloads pulls in the full
    # planning stack, which the lightweight wire-codec users (loadgen,
    # tests) do not need.
    from repro.workloads.io import scenario_from_dict
    from repro.workloads.synthetic import SyntheticConfig, generate_scenario

    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"reload body is not valid JSON: {exc}") from None
    if not isinstance(data, Mapping):
        raise ValidationError("reload body must be a JSON object")
    if data.get("document") == "repro-scenario":
        return scenario_from_dict(data)
    if data.get("document") == "repro-policy":
        from repro.policy.serialization import policy_from_dict

        return policy_from_dict(data)
    synthetic = data.get("synthetic")
    if isinstance(synthetic, Mapping):
        allowed = {"seed", "n_services", "n_formats", "n_nodes"}
        unknown = set(synthetic) - allowed
        if unknown:
            raise ValidationError(
                f"unknown synthetic scenario keys: {sorted(unknown)}"
            )
        coerced = {}
        for key, value in synthetic.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValidationError(
                    f"synthetic scenario key {key!r} must be an integer, "
                    f"got {value!r}"
                )
            coerced[key] = value
        return generate_scenario(SyntheticConfig(**coerced))
    raise ValidationError(
        "reload body must be a repro-scenario document, a repro-policy "
        "document, or {'synthetic': {...}}"
    )


def decode_outcome_report(body: bytes) -> "tuple[str, list]":
    """Parse one ``POST /report`` body into ``(client, outcome samples)``.

    The wire shape is ``{"client": str, "outcomes": [{"service": str,
    "success": bool}, ...]}``; duplicate services are legal (each entry
    is one sample).  Strict like every other decoder here: anything
    malformed raises :class:`~repro.errors.ValidationError` -> 400.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"report body is not valid JSON: {exc}") from None
    if not isinstance(data, Mapping):
        raise ValidationError("report body must be a JSON object")
    client = data.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ValidationError("'client' must be a non-empty string")
    outcomes = data.get("outcomes")
    if not isinstance(outcomes, list) or not outcomes:
        raise ValidationError("'outcomes' must be a non-empty array")
    samples = []
    for index, entry in enumerate(outcomes):
        if not isinstance(entry, Mapping):
            raise ValidationError(
                f"outcomes[{index}] must be an object, "
                f"got {type(entry).__name__}"
            )
        service = entry.get("service")
        if not isinstance(service, str) or not service:
            raise ValidationError(
                f"outcomes[{index}].service must be a non-empty string"
            )
        success = entry.get("success")
        if not isinstance(success, bool):
            raise ValidationError(
                f"outcomes[{index}].success must be a boolean"
            )
        samples.append((service, success))
    return client, samples


def zero_hop_payload(
    *,
    status: str,
    degraded: bool,
    formats: "list[str]",
    satisfaction: float,
    delivered_frame_rate: Optional[float],
    reason: str,
    generation: int,
    cache_hit: bool,
    queue_ms: float,
    plan_ms: float,
    **extra: Any,
) -> Dict[str, Any]:
    """The 200 body for any zero-hop (sender -> receiver) answer.

    One construction site for every response that ships a source variant
    without an adaptation chain — degraded-mode passthroughs and policy
    fast-path skips — so their wire shapes cannot drift apart.
    ``success`` is always true: the client gets a deliverable plan.
    """
    payload: Dict[str, Any] = {
        "status": status,
        "success": True,
        "degraded": degraded,
        "path": ["sender", "receiver"],
        "formats": list(formats),
        "satisfaction": round(float(satisfaction), 6),
        "cost": 0.0,
        "delivered_frame_rate": (
            round(delivered_frame_rate, 6)
            if delivered_frame_rate is not None
            else None
        ),
        "reason": reason,
        "generation": generation,
        "cache_hit": cache_hit,
        "queue_ms": round(queue_ms, 3),
        "plan_ms": round(plan_ms, 3),
    }
    payload.update(extra)
    return payload


def degraded_response_payload(
    *,
    reason: str,
    generation: int,
    queue_ms: float,
    plan_ms: float,
    quarantined: "list[str]",
) -> Dict[str, Any]:
    """The 200 body for a degraded-mode (zero-hop passthrough) answer.

    The source variant ships unadapted: the path carries only the
    endpoints, no formats, zero declared satisfaction.  ``success`` is
    true — the client gets *something* within its deadline — and
    ``degraded`` marks the quality downgrade explicitly.
    """
    return zero_hop_payload(
        status="degraded",
        degraded=True,
        formats=[],
        satisfaction=0.0,
        delivered_frame_rate=None,
        reason=reason,
        generation=generation,
        cache_hit=False,
        queue_ms=queue_ms,
        plan_ms=plan_ms,
        quarantined=quarantined,
    )


def policy_skip_payload(
    plan: Any,
    *,
    cache_hit: bool,
    generation: int,
    policy_generation: int,
    queue_ms: float,
    plan_ms: float,
) -> Dict[str, Any]:
    """The 200 body for a policy fast-path (zero-hop skip) answer.

    Unlike a degraded passthrough this is a *quality* answer: the policy
    engine proved the declared satisfaction is within the firing rule's
    tolerance of the selector optimum, and the payload names the rule and
    carries the policy trace.
    """
    result = plan.result
    return zero_hop_payload(
        status="policy_skip",
        degraded=False,
        formats=list(result.formats),
        satisfaction=result.satisfaction,
        delivered_frame_rate=result.delivered_frame_rate,
        reason=f"policy rule {plan.rule_id!r} matched",
        generation=generation,
        cache_hit=cache_hit,
        queue_ms=queue_ms,
        plan_ms=plan_ms,
        rule=plan.rule_id,
        policy_trace=list(plan.trace),
        policy_generation=policy_generation,
    )


def plan_response_payload(
    plan: SessionPlan,
    *,
    cache_hit: bool,
    generation: int,
    queue_ms: float,
    plan_ms: float,
) -> Dict[str, Any]:
    """The 200 body for one completed planning request."""
    result = plan.result
    payload: Dict[str, Any] = {
        "status": "ok" if plan.success else "infeasible",
        "success": plan.success,
        "degraded": False,
        "generation": generation,
        "cache_hit": cache_hit,
        "queue_ms": round(queue_ms, 3),
        "plan_ms": round(plan_ms, 3),
    }
    if plan.success:
        frame_rate = result.delivered_frame_rate
        payload.update(
            path=list(result.path),
            formats=list(result.formats),
            satisfaction=round(result.satisfaction, 6),
            cost=round(result.accumulated_cost, 6),
            delivered_frame_rate=(
                round(frame_rate, 6) if frame_rate is not None else None
            ),
        )
    else:
        payload["reason"] = result.failure_reason
    return payload


def group_response_payload(
    plan: Any,
    *,
    cache_hit: bool,
    generation: int,
    queue_ms: float,
    plan_ms: float,
) -> Dict[str, Any]:
    """The 200 body for one completed group-planning request.

    ``status`` is ``ok`` when at least one receiver class got its
    standalone-optimal branch and ``infeasible`` when none did;
    per-class fallbacks are always listed so a partially served group is
    never mistaken for a fully served one.
    """
    tree = plan.tree
    payload: Dict[str, Any] = {
        "status": "ok" if plan.success else "infeasible",
        "success": plan.success,
        "degraded": False,
        "generation": generation,
        "cache_hit": cache_hit,
        "queue_ms": round(queue_ms, 3),
        "plan_ms": round(plan_ms, 3),
        "classes": plan.class_count,
        "sessions": plan.total_sessions,
        "branches": [
            {
                "class_id": branch.class_id,
                "sessions": branch.sessions,
                "path": list(branch.result.path),
                "formats": list(branch.result.formats),
                "satisfaction": round(branch.result.satisfaction, 6),
            }
            for branch in tree.branches
        ],
        "fallbacks": [
            {"class_id": class_id, "reason": reason}
            for class_id, reason in tree.fallbacks
        ],
        "tree": {
            "edges": len(tree.edges),
            "shared_edges": tree.shared_edge_count,
            "leaves": tree.branch_count,
            "digest": tree.digest(),
        },
        "bandwidth": {
            "tree_bps": round(tree.tree_bandwidth_bps(), 3),
            "per_session_bps": round(tree.per_session_bandwidth_bps(), 3),
            "saved_bps": round(tree.saved_bandwidth_bps(), 3),
        },
    }
    return payload


def error_payload(status: str, detail: str = "", **extra: Any) -> Dict[str, Any]:
    """A non-200 body: ``status`` discriminator plus optional detail."""
    payload: Dict[str, Any] = {"status": status}
    if detail:
        payload["detail"] = detail
    payload.update(extra)
    return payload


def encode_payload(payload: Mapping[str, Any]) -> bytes:
    """Canonical (sorted-key, compact) JSON bytes for any payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
