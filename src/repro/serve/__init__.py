"""``repro.serve`` — the asyncio planning gateway and its load generator.

The serving layer the paper's architecture implies but one-shot CLI runs
never exercised: an always-on daemon that admits JSON plan requests
under deadlines, sheds load it cannot serve in time, swaps catalogs
without a restart, and reports one metrics document.  See
``docs/SERVING.md`` for the operational contract.
"""

from repro.serve.admission import DeadlineQueue, RateLimiter, TokenBucket
from repro.serve.gateway import GatewayConfig, PlanningGateway
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    RequestOutcome,
    run_loadgen,
)
from repro.serve.metrics import GatewayMetrics, Histogram

__all__ = [
    "DeadlineQueue",
    "RateLimiter",
    "TokenBucket",
    "GatewayConfig",
    "PlanningGateway",
    "LoadgenConfig",
    "LoadgenReport",
    "RequestOutcome",
    "run_loadgen",
    "GatewayMetrics",
    "Histogram",
]
