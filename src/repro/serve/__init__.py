"""``repro.serve`` — the asyncio planning gateway and its load generator.

The serving layer the paper's architecture implies but one-shot CLI runs
never exercised: an always-on daemon that admits JSON plan requests
under deadlines, sheds load it cannot serve in time, swaps catalogs
without a restart, and reports one metrics document.  ``repro serve
--workers N`` scales the same contract across a multi-process cluster
(:mod:`repro.serve.cluster`) with device-class shard affinity
(:mod:`repro.serve.sharding`).  See ``docs/SERVING.md`` for the
operational contract.
"""

from repro.serve.admission import DeadlineQueue, RateLimiter, TokenBucket
from repro.serve.cluster import ClusterConfig, ClusterSupervisor
from repro.serve.gateway import GatewayConfig, PlanningGateway
from repro.serve.health import (
    BreakerState,
    CircuitBreaker,
    FailureDetector,
    HealthConfig,
    HealthRegistry,
)
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    RequestOutcome,
    run_loadgen,
)
from repro.serve.metrics import GatewayMetrics, Histogram
from repro.serve.sharding import (
    SHARD_HINT_HEADER,
    WORKER_ID_HEADER,
    ShardRouter,
    device_shard_hint,
)

__all__ = [
    "DeadlineQueue",
    "RateLimiter",
    "TokenBucket",
    "ClusterConfig",
    "ClusterSupervisor",
    "GatewayConfig",
    "PlanningGateway",
    "BreakerState",
    "CircuitBreaker",
    "FailureDetector",
    "HealthConfig",
    "HealthRegistry",
    "LoadgenConfig",
    "LoadgenReport",
    "RequestOutcome",
    "run_loadgen",
    "GatewayMetrics",
    "Histogram",
    "SHARD_HINT_HEADER",
    "WORKER_ID_HEADER",
    "ShardRouter",
    "device_shard_hint",
]
