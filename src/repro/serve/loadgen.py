"""A seeded open-loop load generator for the planning gateway.

Open-loop means arrival times are fixed up front — a Poisson process from
:mod:`repro.sim.arrivals` driven by one injected ``random.Random(seed)``
— and requests fire at those instants regardless of how fast the gateway
answers, exactly the regime that exposes queueing collapse (a closed-loop
client would politely slow down and hide it).

Determinism: the request *sequence* (arrival offsets, device-class
round-robin, request bodies) is a pure function of the seed, and against
a fresh unloaded daemon the per-request outcome sequence — status,
success, selected path, satisfaction — is too.  :meth:`LoadgenReport.
outcome_digest` hashes that sequence (latencies excluded: wall-clock is
not reproducible) so two runs can be compared with one string.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import GatewayProtocolError, ValidationError
from repro.planner.workload import device_variants
from repro.profiles.device import DeviceProfile
from repro.profiles.serialization import profile_to_dict
from repro.runtime.metrics import metrics_document
from repro.serve.http11 import read_response, render_request
from repro.serve.protocol import encode_payload
from repro.serve.sharding import (
    SHARD_HINT_HEADER,
    WORKER_ID_HEADER,
    ShardRouter,
    device_shard_hint,
)
from repro.sim.arrivals import PoissonArrivals
from repro.sim.report import percentile
from repro.workloads.scenario import Scenario

__all__ = ["LoadgenConfig", "RequestOutcome", "LoadgenReport", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation campaign."""

    host: str = "127.0.0.1"
    port: int = 8077
    requests: int = 500
    rate_per_s: float = 200.0
    seed: int = 0
    #: Distinct device classes cycled round-robin over the stream.
    distinct: int = 16
    #: Deadline carried by every request (``None`` = server default).
    deadline_ms: Optional[float] = 250.0
    client: str = "loadgen"
    #: Client-side cap on waiting for any single response.
    timeout_s: float = 10.0
    #: Route each request to the worker owning its device-class shard
    #: (cluster mode): fetch the topology from the supervisor's admin
    #: port and send hinted requests to per-worker private ports instead
    #: of the kernel-balanced shared port.
    shard_affinity: bool = False
    #: The cluster supervisor's admin port (required for affinity).
    admin_port: Optional[int] = None
    #: Opt-in retries per request on explicit backpressure (429) and
    #: client-side transport failures.  0 preserves the classic
    #: single-shot behavior.  The backoff schedule is a pure function of
    #: ``(seed, request index)``, so the outcome digest stays
    #: reproducible run to run.
    retries: int = 0
    #: Base delay of the seeded jittered exponential backoff.
    retry_backoff_s: float = 0.05
    #: Cap on any single retry delay; a server ``Retry-After`` is
    #: honored up to this cap.
    retry_backoff_max_s: float = 2.0
    #: When > 0, each request is a ``POST /plan-group`` batching this
    #: many consecutive device classes as one receiver-class set (one
    #: session per class); 0 keeps the classic per-session ``/plan``
    #: stream.  Must not exceed ``distinct`` (receiver devices within a
    #: group must be unique).
    group_size: int = 0
    #: When > 0, this fraction of requests carries a *compatible* device
    #: (one that decodes the content's source format natively), so a
    #: gateway policy with a ``decodes``-gated ``skip`` rule answers them
    #: on the zero-hop fast path.  Which requests are compatible is a
    #: pure function of the seed; the report then splits latency by path
    #: and reports the observed fast-path hit rate.  0 disables the mix.
    policy_mix: float = 0.0


@dataclass(frozen=True)
class RequestOutcome:
    """What one request experienced, in arrival order."""

    index: int
    #: HTTP status, or 0 when the request failed client-side.
    status: int
    #: The server's ``status`` discriminator (``ok``, ``shed``, ...) or
    #: ``client_error`` / ``client_timeout``.
    outcome: str
    success: bool
    path: Tuple[str, ...]
    satisfaction: float
    latency_ms: float
    #: The ``x-worker-id`` the answering process stamped on the response
    #: ("" standalone or on client-side failures).
    worker: str = ""
    #: Attempts this outcome took (1 = first try; > 1 means retried).
    attempts: int = 1
    #: The server's ``Retry-After`` suggestion in seconds (0 when none);
    #: plumbing for the retry loop, excluded from the digest.
    retry_after_s: float = 0.0
    #: Group mode: per-class branch satisfactions of a ``/plan-group``
    #: answer (empty for per-session requests and non-200 outcomes).
    class_satisfactions: Tuple[float, ...] = ()
    #: Group mode: shared-bandwidth savings the answered tree reported.
    saved_bps: float = 0.0

    def digest_key(self) -> Tuple:
        """The deterministic slice of this outcome (no wall-clock).

        The worker id is deliberately excluded: without affinity the
        kernel's connection balancing decides which worker answers, so
        including it would make same-seed digests diverge run to run.
        Attempt counts are excluded too: whether a retry was *needed*
        depends on server-side timing, while the final outcome of a
        seeded schedule is what two runs must agree on.
        """
        return (
            self.index,
            self.status,
            self.outcome,
            self.success,
            self.path,
            self.satisfaction,
            self.class_satisfactions,
            round(self.saved_bps, 3),
        )


@dataclass(frozen=True)
class LoadgenReport:
    """Aggregate outcome of one campaign."""

    requests: int
    rate_per_s: float
    seed: int
    elapsed_s: float
    outcomes: Tuple[RequestOutcome, ...] = field(default_factory=tuple)
    #: Receiver classes per request in group mode (0 = per-session runs).
    group_size: int = 0
    #: The campaign's compatible-device fraction (0 = no policy mix).
    policy_mix: float = 0.0

    def by_outcome(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.outcome] = counts.get(outcome.outcome, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def completed(self) -> int:
        """Requests the gateway answered 200 (feasible or not)."""
        return sum(1 for o in self.outcomes if o.status == 200)

    @property
    def shed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == 429)

    @property
    def timeouts(self) -> int:
        return sum(1 for o in self.outcomes if o.status == 504)

    @property
    def client_failures(self) -> int:
        return sum(1 for o in self.outcomes if o.status == 0)

    @property
    def failed(self) -> int:
        """Everything that is neither served nor an explicit shed/timeout."""
        return sum(
            1 for o in self.outcomes if o.status not in (200, 429, 504)
        )

    @property
    def retried(self) -> int:
        """Requests that needed more than one attempt."""
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def retry_attempts(self) -> int:
        """Total extra attempts spent across the campaign."""
        return sum(o.attempts - 1 for o in self.outcomes)

    @property
    def exhausted(self) -> int:
        """Requests still failing retryably after the full retry budget.

        The retry loop only stops early on a non-retryable outcome, so a
        final 429 or client-side failure after >1 attempt means the
        budget ran dry.
        """
        return sum(
            1
            for o in self.outcomes
            if o.attempts > 1 and (o.status == 429 or o.status == 0)
        )

    @property
    def achieved_rate_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    def latency_percentiles(self) -> Dict[str, float]:
        served = [o.latency_ms for o in self.outcomes if o.status == 200]
        return {
            "p50": percentile(served, 50.0),
            "p95": percentile(served, 95.0),
            "p99": percentile(served, 99.0),
        }

    def class_satisfaction_percentiles(self) -> Dict[str, float]:
        """Per-class branch satisfaction spread across every served group.

        Each answered ``/plan-group`` contributes one sample per feasible
        class branch, so the distribution weights classes, not groups.
        Empty (all zeros) outside group mode.
        """
        samples = [
            satisfaction
            for o in self.outcomes
            if o.status == 200
            for satisfaction in o.class_satisfactions
        ]
        return {
            "p10": percentile(samples, 10.0),
            "p50": percentile(samples, 50.0),
            "p95": percentile(samples, 95.0),
        }

    @property
    def saved_bps_total(self) -> float:
        """Shared-bandwidth savings summed over every served group."""
        return sum(o.saved_bps for o in self.outcomes if o.status == 200)

    @property
    def policy_fast_path(self) -> int:
        """Served requests the gateway answered on the policy fast path."""
        return sum(
            1
            for o in self.outcomes
            if o.status == 200 and o.outcome == "policy_skip"
        )

    @property
    def policy_denied(self) -> int:
        """Requests a policy ``deny`` rule rejected (403)."""
        return sum(1 for o in self.outcomes if o.status == 403)

    @property
    def policy_fast_path_rate(self) -> float:
        """Fast-path answers over all served (200) requests."""
        if self.completed == 0:
            return 0.0
        return self.policy_fast_path / self.completed

    def policy_latency_split(self) -> Dict[str, Dict[str, float]]:
        """p50/p99 latency split by answering path (fast vs selector).

        Only served (200) requests contribute; the selector bucket also
        covers tier-forced answers, which do run the selector.
        """
        fast = [
            o.latency_ms
            for o in self.outcomes
            if o.status == 200 and o.outcome == "policy_skip"
        ]
        selector = [
            o.latency_ms
            for o in self.outcomes
            if o.status == 200 and o.outcome != "policy_skip"
        ]
        return {
            "fast_path": {
                "p50": percentile(fast, 50.0),
                "p99": percentile(fast, 99.0),
            },
            "selector": {
                "p50": percentile(selector, 50.0),
                "p99": percentile(selector, 99.0),
            },
        }

    def worker_distribution(self) -> Dict[str, int]:
        """How many answered requests each worker served (cluster honesty).

        Built from the ``x-worker-id`` response header, i.e. from which
        process *actually* answered — not from where the client intended
        to send the request — so an affinity run that silently fell back
        to the shared port would show up here as a spread, not a no-op.
        Empty when no response carried a worker id (standalone gateway).
        """
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.worker:
                counts[outcome.worker] = counts.get(outcome.worker, 0) + 1
        return dict(sorted(counts.items()))

    def outcome_digest(self) -> str:
        """SHA-256 over the deterministic per-request outcome sequence."""
        keys = tuple(
            o.digest_key() for o in sorted(self.outcomes, key=lambda o: o.index)
        )
        return hashlib.sha256(repr(keys).encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict:
        latency = self.latency_percentiles()
        payload = {
            "requests": self.requests,
            "rate_per_s": self.rate_per_s,
            "seed": self.seed,
            "elapsed_s": round(self.elapsed_s, 6),
            "achieved_rate_per_s": round(self.achieved_rate_per_s, 3),
            "completed": self.completed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "client_failures": self.client_failures,
            "failed": self.failed,
            "retried": self.retried,
            "retry_attempts": self.retry_attempts,
            "exhausted": self.exhausted,
            "by_outcome": self.by_outcome(),
            "latency_ms": {k: round(v, 3) for k, v in latency.items()},
            "outcome_digest": self.outcome_digest(),
            "worker_distribution": self.worker_distribution(),
        }
        if self.group_size > 0:
            satisfaction = self.class_satisfaction_percentiles()
            payload["group"] = {
                "size": self.group_size,
                "class_satisfaction": {
                    k: round(v, 6) for k, v in satisfaction.items()
                },
                "saved_bps_total": round(self.saved_bps_total, 3),
            }
        if self.policy_mix > 0:
            split = self.policy_latency_split()
            payload["policy"] = {
                "mix": self.policy_mix,
                "fast_path": self.policy_fast_path,
                "fast_path_rate": round(self.policy_fast_path_rate, 6),
                "denied": self.policy_denied,
                "latency_ms": {
                    path: {k: round(v, 3) for k, v in buckets.items()}
                    for path, buckets in split.items()
                },
            }
        return metrics_document("loadgen", payload)

    def summary(self) -> str:
        latency = self.latency_percentiles()
        shed_rate = self.shed / self.requests if self.requests else 0.0
        timeout_rate = self.timeouts / self.requests if self.requests else 0.0
        lines = [
            f"requests:          {self.requests} at {self.rate_per_s:.0f}/s "
            f"(seed {self.seed})",
            f"elapsed:           {self.elapsed_s:.2f}s "
            f"({self.achieved_rate_per_s:.0f} served/s)",
            f"served:            {self.completed}",
            f"latency ms:        p50 {latency['p50']:.1f}  "
            f"p95 {latency['p95']:.1f}  p99 {latency['p99']:.1f}",
            f"shed:              {self.shed} ({shed_rate * 100:.1f}%)",
            f"timeouts:          {self.timeouts} ({timeout_rate * 100:.1f}%)",
            f"failed:            {self.failed} "
            f"({self.client_failures} client-side)",
            f"outcome digest:    {self.outcome_digest()}",
        ]
        if self.retried:
            lines.insert(
                -1,
                f"retried:           {self.retried} "
                f"({self.retry_attempts} extra attempts, "
                f"{self.exhausted} exhausted)",
            )
        distribution = self.worker_distribution()
        if distribution:
            spread = "  ".join(
                f"{worker}:{count}" for worker, count in distribution.items()
            )
            lines.append(f"per worker:        {spread}")
        if self.group_size > 0:
            satisfaction = self.class_satisfaction_percentiles()
            lines.append(
                f"class satisfaction: p10 {satisfaction['p10']:.3f}  "
                f"p50 {satisfaction['p50']:.3f}  "
                f"p95 {satisfaction['p95']:.3f} "
                f"({self.group_size} classes/group)"
            )
            lines.append(
                f"bandwidth saved:   {self.saved_bps_total / 1e6:.2f} Mbps "
                f"across served groups"
            )
        if self.policy_mix > 0:
            split = self.policy_latency_split()
            lines.append(
                f"policy fast path:  {self.policy_fast_path} "
                f"({self.policy_fast_path_rate * 100:.1f}% of served, "
                f"{self.policy_mix * 100:.0f}% compatible mix, "
                f"{self.policy_denied} denied)"
            )
            lines.append(
                f"latency by path:   fast p50 "
                f"{split['fast_path']['p50']:.1f} "
                f"p99 {split['fast_path']['p99']:.1f}  |  selector p50 "
                f"{split['selector']['p50']:.1f} "
                f"p99 {split['selector']['p99']:.1f}"
            )
        return "\n".join(lines)


def _request_bodies(
    scenario: Scenario, config: LoadgenConfig
) -> List[Tuple[bytes, str]]:
    """Pre-serialized (body, shard hint) pairs, deterministic in the seed.

    The hint rides along even without ``--shard-affinity``: it costs one
    header and lets cluster workers meter how traffic would have sharded
    (``shard_hits`` / ``shard_misses``).

    Group mode (``group_size > 0``) emits ``/plan-group`` bodies instead:
    request ``i`` batches ``group_size`` consecutive device classes
    (window start rotating with ``i``) as one receiver-class set, one
    session per class, hinted by the window's first device.
    """
    variants = device_variants(scenario.device, config.distinct)
    if config.group_size > 0:
        bodies: List[Tuple[bytes, str]] = []
        for i in range(config.requests):
            start = (i * config.group_size) % len(variants)
            window = [
                variants[(start + offset) % len(variants)]
                for offset in range(config.group_size)
            ]
            payload: Dict = {
                "client": config.client,
                "receivers": [
                    {
                        "class_id": variant.device_id,
                        "device": profile_to_dict(variant),
                        "sessions": 1,
                    }
                    for variant in window
                ],
            }
            if config.deadline_ms is not None:
                payload["deadline_ms"] = config.deadline_ms
            bodies.append(
                (encode_payload(payload), device_shard_hint(window[0]))
            )
        return bodies
    def body_for(variant: DeviceProfile) -> Tuple[bytes, str]:
        payload = {
            "client": config.client,
            "device": profile_to_dict(variant),
        }
        if config.deadline_ms is not None:
            payload["deadline_ms"] = config.deadline_ms
        return (encode_payload(payload), device_shard_hint(variant))

    variant_bodies = [body_for(variant) for variant in variants]
    if config.policy_mix <= 0:
        return [
            variant_bodies[i % len(variant_bodies)]
            for i in range(config.requests)
        ]
    # Policy mix: a seeded fraction of the stream swaps in *compatible*
    # sibling devices (same class shape, but decoding the source format
    # natively and identifying as ``<id>-compat``), so a gateway policy
    # gated on ``decodes`` answers exactly those on the fast path.
    source_format = scenario.content.format_names()[0]
    compatible_bodies = [
        body_for(
            DeviceProfile(
                device_id=f"{variant.device_id}-compat",
                decoders=[source_format]
                + [d for d in variant.decoders if d != source_format],
                max_resolution=variant.max_resolution,
                max_color_depth=variant.max_color_depth,
                max_frame_rate=variant.max_frame_rate,
                max_audio_kbps=variant.max_audio_kbps,
                cpu_mips=variant.cpu_mips,
                memory_mb=variant.memory_mb,
                vendor=variant.vendor,
                model=variant.model,
                attributes=variant.attributes,
            )
        )
        for variant in variants
    ]
    mix_rng = random.Random(f"{config.seed}:policy-mix")
    return [
        (compatible_bodies if mix_rng.random() < config.policy_mix
         else variant_bodies)[i % len(variants)]
        for i in range(config.requests)
    ]


async def _fetch_cluster_document(host: str, admin_port: int) -> Dict:
    reader, writer = await asyncio.open_connection(host, admin_port)
    try:
        writer.write(render_request("GET", "/cluster", keep_alive=False))
        await writer.drain()
        response = await read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    if response.status != 200:
        raise ValidationError(
            f"/cluster answered {response.status} on admin port {admin_port}"
        )
    try:
        document = json.loads(response.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"/cluster body is not JSON: {exc}") from None
    if not isinstance(document, dict):
        raise ValidationError("/cluster body must be a JSON object")
    return document


async def _resolve_affinity(
    config: LoadgenConfig,
) -> Tuple[ShardRouter, Dict[int, int]]:
    """The (ring, worker id → private port) map behind ``--shard-affinity``."""
    if config.admin_port is None:
        raise ValidationError(
            "shard affinity needs the cluster admin port (--admin-port)"
        )
    document = await _fetch_cluster_document(config.host, config.admin_port)
    router = ShardRouter.from_dict(document.get("ring", {}))
    ports: Dict[int, int] = {}
    for entry in document.get("workers", ()):
        if not isinstance(entry, dict):
            continue
        worker_id = entry.get("worker_id")
        private_port = entry.get("private_port")
        if isinstance(worker_id, int) and isinstance(private_port, int):
            ports[worker_id] = private_port
    if not ports:
        raise ValidationError(
            "cluster reports no worker private ports; is it still starting?"
        )
    return router, ports


async def _fire_one(
    config: LoadgenConfig,
    index: int,
    body: bytes,
    hint: str,
    port: int,
) -> RequestOutcome:
    loop = asyncio.get_running_loop()
    started = loop.time()
    try:
        reader, writer = await asyncio.open_connection(config.host, port)
        try:
            writer.write(
                render_request(
                    "POST",
                    "/plan-group" if config.group_size > 0 else "/plan",
                    body,
                    headers={SHARD_HINT_HEADER: hint},
                    keep_alive=False,
                )
            )
            await writer.drain()
            response = await asyncio.wait_for(
                read_response(reader), timeout=config.timeout_s
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
    except asyncio.TimeoutError:
        return RequestOutcome(
            index, 0, "client_timeout", False, (), 0.0,
            (loop.time() - started) * 1000.0,
        )
    except (ConnectionError, OSError, GatewayProtocolError) as exc:
        return RequestOutcome(
            index, 0, f"client_error:{type(exc).__name__}", False, (), 0.0,
            (loop.time() - started) * 1000.0,
        )
    latency_ms = (loop.time() - started) * 1000.0
    try:
        payload = json.loads(response.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        payload = {}
    outcome = payload.get("status", "unknown")
    success = bool(payload.get("success", False))
    path = tuple(payload.get("path", ()))
    satisfaction = float(payload.get("satisfaction", 0.0))
    # Group answers carry per-class branches instead of one path.
    class_satisfactions: Tuple[float, ...] = ()
    saved_bps = 0.0
    branches = payload.get("branches")
    if isinstance(branches, list):
        class_satisfactions = tuple(
            float(branch.get("satisfaction", 0.0))
            for branch in branches
            if isinstance(branch, dict)
        )
        bandwidth = payload.get("bandwidth")
        if isinstance(bandwidth, dict):
            try:
                saved_bps = float(bandwidth.get("saved_bps", 0.0))
            except (TypeError, ValueError):
                saved_bps = 0.0
    try:
        retry_after_s = float(response.headers.get("retry-after", 0.0))
    except (TypeError, ValueError):
        retry_after_s = 0.0
    return RequestOutcome(
        index, response.status, outcome, success, path, satisfaction,
        latency_ms, worker=response.headers.get(WORKER_ID_HEADER, ""),
        retry_after_s=max(0.0, retry_after_s),
        class_satisfactions=class_satisfactions,
        saved_bps=saved_bps,
    )


def _retry_schedule(config: LoadgenConfig, index: int) -> List[float]:
    """Jittered exponential backoff delays — a pure function of the seed.

    Each request gets its own stream keyed ``(seed, index)``; attempt
    ``k`` waits ``base * 2^k`` scaled by a jitter factor in [0.5, 1.5),
    capped at ``retry_backoff_max_s``.
    """
    rng = random.Random(f"{config.seed}:retry:{index}")
    return [
        min(
            config.retry_backoff_max_s,
            config.retry_backoff_s * (2.0 ** attempt) * (0.5 + rng.random()),
        )
        for attempt in range(config.retries)
    ]


def _retryable(outcome: RequestOutcome) -> bool:
    # Explicit backpressure (429) and transport failures are worth
    # retrying; 503 (draining) and 504 (deadline already spent) are not.
    return outcome.status == 429 or outcome.status == 0


async def _fire_with_retries(
    config: LoadgenConfig,
    index: int,
    body: bytes,
    hint: str,
    port: int,
) -> RequestOutcome:
    outcome = await _fire_one(config, index, body, hint, port)
    if config.retries < 1:
        return outcome
    schedule = _retry_schedule(config, index)
    attempts = 1
    for delay in schedule:
        if not _retryable(outcome):
            break
        # Honor the server's Retry-After when it is longer than the
        # scheduled backoff, up to the configured cap.
        await asyncio.sleep(
            max(delay, min(outcome.retry_after_s, config.retry_backoff_max_s))
        )
        outcome = await _fire_one(config, index, body, hint, port)
        attempts += 1
    return replace(outcome, attempts=attempts)


async def run_loadgen(
    scenario: Scenario, config: LoadgenConfig
) -> LoadgenReport:
    """Fire one campaign and gather every outcome (never raises per-request)."""
    if config.requests < 1:
        raise ValidationError("loadgen needs requests >= 1")
    if config.retries < 0:
        raise ValidationError("retries must be >= 0")
    if config.retries and (
        config.retry_backoff_s <= 0 or config.retry_backoff_max_s <= 0
    ):
        raise ValidationError("retry backoff delays must be positive")
    if config.group_size < 0:
        raise ValidationError("group_size must be >= 0")
    if config.group_size > config.distinct:
        raise ValidationError(
            f"group_size ({config.group_size}) cannot exceed distinct "
            f"device classes ({config.distinct}): receivers in one group "
            "must carry unique devices"
        )
    if not 0.0 <= config.policy_mix <= 1.0:
        raise ValidationError("policy_mix must lie in [0, 1]")
    if config.policy_mix > 0 and config.group_size > 0:
        raise ValidationError(
            "policy_mix applies to per-session /plan streams; "
            "it cannot combine with group mode"
        )
    bodies = _request_bodies(scenario, config)
    router: Optional[ShardRouter] = None
    worker_ports: Dict[int, int] = {}
    if config.shard_affinity:
        router, worker_ports = await _resolve_affinity(config)
    rng = random.Random(config.seed)
    offsets = PoissonArrivals(config.rate_per_s).times(config.requests, rng)
    loop = asyncio.get_running_loop()
    start = loop.time()
    wall_start = time.perf_counter()

    def target_port(hint: str) -> int:
        if router is None:
            return config.port
        # A worker missing its private port (mid-restart) falls back to
        # the shared port: affinity is advisory, delivery is not.
        return worker_ports.get(router.route(hint), config.port)

    async def timed_fire(index: int) -> RequestOutcome:
        delay = start + offsets[index] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        body, hint = bodies[index]
        return await _fire_with_retries(
            config, index, body, hint, target_port(hint)
        )

    outcomes = await asyncio.gather(
        *(timed_fire(i) for i in range(config.requests))
    )
    elapsed = time.perf_counter() - wall_start
    return LoadgenReport(
        requests=config.requests,
        rate_per_s=config.rate_per_s,
        seed=config.seed,
        elapsed_s=elapsed,
        outcomes=tuple(sorted(outcomes, key=lambda o: o.index)),
        group_size=config.group_size,
        policy_mix=config.policy_mix,
    )
