"""Service advertisements: one offer from one intermediary.

An advertisement binds a service descriptor to the node hosting it, with a
time-to-live after which the directory forgets it (stale proxies must not
attract traffic).  Time is a logical clock owned by the registry, keeping
every test and benchmark deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscoveryError
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = ["Advertisement"]


@dataclass(frozen=True)
class Advertisement:
    """One advertised service offer."""

    descriptor: ServiceDescriptor
    node_id: str
    ttl: float = 300.0
    registered_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.node_id:
            raise DiscoveryError("advertisement needs a host node id")
        if self.ttl <= 0:
            raise DiscoveryError("advertisement ttl must be positive")
        if self.registered_at < 0:
            raise DiscoveryError("registration time must be >= 0")
        if self.descriptor.kind is not ServiceKind.TRANSCODER:
            raise DiscoveryError(
                f"only transcoders are advertised, not "
                f"{self.descriptor.kind.value} ({self.descriptor.service_id!r})"
            )

    @property
    def service_id(self) -> str:
        return self.descriptor.service_id

    def expires_at(self) -> float:
        return self.registered_at + self.ttl

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at()

    def renewed(self, now: float) -> "Advertisement":
        """A copy re-registered at ``now`` with the same ttl."""
        return Advertisement(
            descriptor=self.descriptor,
            node_id=self.node_id,
            ttl=self.ttl,
            registered_at=now,
        )
