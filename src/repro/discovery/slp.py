"""An SLP-flavored message layer over the discovery registry.

The Service Location Protocol (RFC 2608, the paper's reference [26])
structures discovery as three agent roles: *service agents* advertise on
behalf of services, a *directory agent* aggregates advertisements, and
*user agents* locate services with ``SrvRqst`` messages answered by
``SrvRply``.  This module reproduces that message flow in process — enough
to drive the discovery-based examples and to test churn (agents
re-registering, TTLs lapsing) without sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.discovery.advertisement import Advertisement
from repro.discovery.registry import DiscoveryRegistry, ServiceQuery
from repro.errors import DiscoveryError
from repro.services.descriptor import ServiceDescriptor

__all__ = ["SrvRqst", "SrvRply", "ServiceAgent", "DirectoryAgent", "UserAgent"]


@dataclass(frozen=True)
class SrvRqst:
    """A service request: "find me transcoders matching this predicate"."""

    query: ServiceQuery
    requester: str = ""


@dataclass(frozen=True)
class SrvRply:
    """The directory agent's reply: matching service URLs.

    SLP replies carry service URLs; ours are structured as
    ``service:transcoder:<id>@<node>`` strings plus the resolved
    advertisements for programmatic use.
    """

    urls: Sequence[str]
    advertisements: Sequence[Advertisement]

    def __len__(self) -> int:
        return len(self.urls)


class DirectoryAgent:
    """Wraps a :class:`DiscoveryRegistry` in the SLP message vocabulary."""

    def __init__(self, registry: Optional[DiscoveryRegistry] = None) -> None:
        self.registry = registry if registry is not None else DiscoveryRegistry()

    def handle_registration(
        self, descriptor: ServiceDescriptor, node_id: str, ttl: float
    ) -> Advertisement:
        return self.registry.advertise(descriptor, node_id, ttl)

    def handle_request(self, request: SrvRqst) -> SrvRply:
        advertisements = self.registry.query(request.query)
        urls = [
            f"service:transcoder:{ad.service_id}@{ad.node_id}"
            for ad in advertisements
        ]
        return SrvRply(urls=urls, advertisements=advertisements)


class ServiceAgent:
    """Advertises one node's services and keeps them alive."""

    def __init__(
        self,
        node_id: str,
        directory: DirectoryAgent,
        default_ttl: float = 300.0,
    ) -> None:
        if not node_id:
            raise DiscoveryError("a service agent needs a node id")
        self.node_id = node_id
        self._directory = directory
        self._default_ttl = default_ttl
        self._registered: List[str] = []

    def register(
        self, descriptor: ServiceDescriptor, ttl: Optional[float] = None
    ) -> Advertisement:
        advertisement = self._directory.handle_registration(
            descriptor, self.node_id, ttl if ttl is not None else self._default_ttl
        )
        if descriptor.service_id not in self._registered:
            self._registered.append(descriptor.service_id)
        return advertisement

    def heartbeat(self) -> int:
        """Renew every advertisement this agent owns; returns how many.

        Advertisements that already expired are silently dropped from this
        agent's list — exactly the behaviour that makes churn visible to
        user agents.
        """
        renewed = 0
        survivors = []
        for service_id in self._registered:
            if service_id in self._directory.registry:
                self._directory.registry.renew(service_id)
                survivors.append(service_id)
                renewed += 1
        self._registered = survivors
        return renewed

    def withdraw(self, service_id: str) -> None:
        if service_id not in self._registered:
            raise DiscoveryError(
                f"agent at {self.node_id!r} does not own {service_id!r}"
            )
        self._directory.registry.deregister(service_id)
        self._registered.remove(service_id)

    @property
    def registered_ids(self) -> List[str]:
        return list(self._registered)


class UserAgent:
    """Issues service requests on behalf of a client."""

    def __init__(self, name: str, directory: DirectoryAgent) -> None:
        self.name = name
        self._directory = directory

    def find(
        self,
        input_format: Optional[str] = None,
        output_format: Optional[str] = None,
        max_cost: Optional[float] = None,
    ) -> SrvRply:
        request = SrvRqst(
            query=ServiceQuery(
                input_format=input_format,
                output_format=output_format,
                max_cost=max_cost,
            ),
            requester=self.name,
        )
        return self._directory.handle_request(request)
