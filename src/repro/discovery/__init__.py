"""Service discovery: how intermediary profiles get populated.

Section 3 notes that adaptation services "can be described using any
service description language such as JINI, SLP, or WSDL".  This package is
a compact, in-process stand-in for that machinery:

- :class:`~repro.discovery.advertisement.Advertisement` — one service
  offer, bound to a host node with a time-to-live;
- :class:`~repro.discovery.registry.DiscoveryRegistry` — a directory agent:
  advertisements register, expire on a logical clock, and answer
  format/cost/media-type queries;
- :mod:`repro.discovery.slp` — an SLP-flavored message layer (service
  agents advertise, user agents issue ``SrvRqst`` and receive ``SrvRply``)
  built on the registry, used by the discovery-driven examples.

The output of discovery is exactly what graph construction consumes:
intermediary profiles (:func:`~repro.discovery.registry.DiscoveryRegistry.
intermediary_profiles`) and, through them, the service catalog and
placement.
"""

from repro.discovery.advertisement import Advertisement
from repro.discovery.registry import DiscoveryRegistry, ServiceQuery
from repro.discovery.slp import DirectoryAgent, ServiceAgent, SrvRply, SrvRqst, UserAgent

__all__ = [
    "Advertisement",
    "DiscoveryRegistry",
    "ServiceQuery",
    "ServiceAgent",
    "DirectoryAgent",
    "UserAgent",
    "SrvRqst",
    "SrvRply",
]
