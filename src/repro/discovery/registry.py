"""The discovery registry: a directory of advertised services.

The registry plays the SLP directory-agent role: service agents register
advertisements, the registry ages them out on a logical clock, and user
agents query by input/output format, media-type-free attributes, and cost.
Its :meth:`DiscoveryRegistry.intermediary_profiles` snapshot is the bridge
into the paper's pipeline — it yields exactly the Section 3 intermediary
profiles that graph construction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.discovery.advertisement import Advertisement
from repro.errors import DiscoveryError
from repro.network.topology import NetworkTopology
from repro.profiles.intermediary import IntermediaryProfile
from repro.services.catalog import service_sort_key
from repro.services.descriptor import ServiceDescriptor

__all__ = ["ServiceQuery", "DiscoveryRegistry"]


@dataclass(frozen=True)
class ServiceQuery:
    """Predicate over advertisements; ``None`` fields do not constrain."""

    input_format: Optional[str] = None
    output_format: Optional[str] = None
    max_cost: Optional[float] = None
    node_id: Optional[str] = None
    provider: Optional[str] = None

    def matches(self, advertisement: Advertisement) -> bool:
        descriptor = advertisement.descriptor
        if self.input_format is not None and not descriptor.accepts(self.input_format):
            return False
        if self.output_format is not None and not descriptor.produces(self.output_format):
            return False
        if self.max_cost is not None and descriptor.cost > self.max_cost:
            return False
        if self.node_id is not None and advertisement.node_id != self.node_id:
            return False
        if self.provider is not None and descriptor.provider != self.provider:
            return False
        return True


class DiscoveryRegistry:
    """Directory agent with a logical clock and TTL-based expiry."""

    def __init__(self) -> None:
        self._advertisements: Dict[str, Advertisement] = {}
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Logical time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock

    def advance(self, seconds: float) -> float:
        """Move the logical clock forward, expiring stale advertisements."""
        if seconds < 0:
            raise DiscoveryError("the logical clock cannot move backwards")
        self._clock += seconds
        self._expire()
        return self._clock

    def _expire(self) -> None:
        stale = [
            service_id
            for service_id, ad in self._advertisements.items()
            if ad.is_expired(self._clock)
        ]
        for service_id in stale:
            del self._advertisements[service_id]

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def advertise(
        self,
        descriptor: ServiceDescriptor,
        node_id: str,
        ttl: float = 300.0,
    ) -> Advertisement:
        """Register (or refresh) a service offer at the current time."""
        advertisement = Advertisement(
            descriptor=descriptor,
            node_id=node_id,
            ttl=ttl,
            registered_at=self._clock,
        )
        existing = self._advertisements.get(descriptor.service_id)
        if existing is not None and existing.node_id != node_id:
            raise DiscoveryError(
                f"service {descriptor.service_id!r} is already advertised "
                f"from node {existing.node_id!r}; deregister it first"
            )
        self._advertisements[descriptor.service_id] = advertisement
        return advertisement

    def renew(self, service_id: str) -> Advertisement:
        """Refresh an advertisement's ttl from the current time."""
        try:
            advertisement = self._advertisements[service_id]
        except KeyError:
            raise DiscoveryError(f"no advertisement for {service_id!r}") from None
        renewed = advertisement.renewed(self._clock)
        self._advertisements[service_id] = renewed
        return renewed

    def deregister(self, service_id: str) -> None:
        if service_id not in self._advertisements:
            raise DiscoveryError(f"no advertisement for {service_id!r}")
        del self._advertisements[service_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: Optional[ServiceQuery] = None) -> List[Advertisement]:
        """Live advertisements matching ``query``, in natural id order."""
        self._expire()
        ads = [
            ad
            for ad in self._advertisements.values()
            if query is None or query.matches(ad)
        ]
        ads.sort(key=lambda ad: service_sort_key(ad.service_id))
        return ads

    def get(self, service_id: str) -> Optional[Advertisement]:
        self._expire()
        return self._advertisements.get(service_id)

    def __len__(self) -> int:
        self._expire()
        return len(self._advertisements)

    def __contains__(self, service_id: object) -> bool:
        self._expire()
        return service_id in self._advertisements

    # ------------------------------------------------------------------
    # Bridge into the paper's pipeline
    # ------------------------------------------------------------------
    def intermediary_profiles(
        self, topology: Optional[NetworkTopology] = None
    ) -> List[IntermediaryProfile]:
        """Snapshot the directory as Section-3 intermediary profiles.

        With a topology given, each profile reports its node's spare
        resources; otherwise defaults apply (the algorithms only need the
        service lists).
        """
        self._expire()
        by_node: Dict[str, List[ServiceDescriptor]] = {}
        for ad in self.query():
            by_node.setdefault(ad.node_id, []).append(ad.descriptor)
        profiles = []
        for node_id in sorted(by_node):
            if topology is not None:
                node = topology.get_node(node_id)
                cpu, memory = node.cpu_mips, node.memory_mb
            else:
                cpu, memory = 1000.0, 1024.0
            profiles.append(
                IntermediaryProfile(
                    node_id=node_id,
                    services=by_node[node_id],
                    available_cpu_mips=cpu,
                    available_memory_mb=memory,
                )
            )
        return profiles
