"""WSDL-style XML documents for trans-coding services.

Section 3 lists WSDL alongside JINI and SLP as the description languages an
intermediary may advertise its services in.  This module renders a
:class:`~repro.services.descriptor.ServiceDescriptor` as a compact
WSDL-flavored XML document and parses it back.  The vocabulary is a small
subset shaped like WSDL 1.1 — a ``service`` with ``port`` elements for the
input/output format links plus a ``qos`` extension block for the caps,
cost, and resource requirements — enough for interoperability tests and
for persisting catalogs to disk.

The document shape::

    <service name="T1" provider="acme" kind="transcoder">
      <documentation>...</documentation>
      <port direction="input" format="F5"/>
      <port direction="input" format="F6"/>
      <port direction="output" format="F10"/>
      <qos cost="1.0" cpuFactor="1.0" memoryMb="16.0">
        <cap parameter="frame_rate" value="30.0"/>
      </qos>
    </service>

A catalog serializes as a ``<catalog>`` of services.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List

from repro.errors import ValidationError
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = [
    "descriptor_to_wsdl",
    "descriptor_from_wsdl",
    "catalog_to_wsdl",
    "catalog_from_wsdl",
]


def _descriptor_element(descriptor: ServiceDescriptor) -> ET.Element:
    service = ET.Element(
        "service",
        {
            "name": descriptor.service_id,
            "provider": descriptor.provider,
            "kind": descriptor.kind.value,
        },
    )
    if descriptor.description:
        documentation = ET.SubElement(service, "documentation")
        documentation.text = descriptor.description
    for fmt in descriptor.input_formats:
        ET.SubElement(service, "port", {"direction": "input", "format": fmt})
    for fmt in descriptor.output_formats:
        ET.SubElement(service, "port", {"direction": "output", "format": fmt})
    qos = ET.SubElement(
        service,
        "qos",
        {
            "cost": repr(descriptor.cost),
            "cpuFactor": repr(descriptor.cpu_factor),
            "memoryMb": repr(descriptor.memory_mb),
        },
    )
    for name, value in sorted(descriptor.output_caps.items()):
        ET.SubElement(qos, "cap", {"parameter": name, "value": repr(value)})
    return service


def descriptor_to_wsdl(descriptor: ServiceDescriptor) -> str:
    """Render one descriptor as a WSDL-style XML string."""
    return ET.tostring(_descriptor_element(descriptor), encoding="unicode")


def _descriptor_from_element(element: ET.Element) -> ServiceDescriptor:
    if element.tag != "service":
        raise ValidationError(f"expected <service>, got <{element.tag}>")
    name = element.get("name", "")
    kind_text = element.get("kind", "transcoder")
    try:
        kind = ServiceKind(kind_text)
    except ValueError:
        raise ValidationError(f"unknown service kind {kind_text!r}") from None
    inputs: List[str] = []
    outputs: List[str] = []
    for port in element.findall("port"):
        direction = port.get("direction")
        fmt = port.get("format")
        if not fmt:
            raise ValidationError(f"service {name!r}: port without a format")
        if direction == "input":
            inputs.append(fmt)
        elif direction == "output":
            outputs.append(fmt)
        else:
            raise ValidationError(
                f"service {name!r}: bad port direction {direction!r}"
            )
    caps: Dict[str, float] = {}
    cost = 0.0
    cpu_factor = 1.0
    memory_mb = 16.0
    qos = element.find("qos")
    if qos is not None:
        cost = float(qos.get("cost", "0.0"))
        cpu_factor = float(qos.get("cpuFactor", "1.0"))
        memory_mb = float(qos.get("memoryMb", "16.0"))
        for cap in qos.findall("cap"):
            parameter = cap.get("parameter")
            value = cap.get("value")
            if parameter is None or value is None:
                raise ValidationError(f"service {name!r}: malformed <cap>")
            caps[parameter] = float(value)
    documentation = element.find("documentation")
    return ServiceDescriptor(
        service_id=name,
        input_formats=tuple(inputs),
        output_formats=tuple(outputs),
        output_caps=caps,
        cost=cost,
        cpu_factor=cpu_factor,
        memory_mb=memory_mb,
        kind=kind,
        provider=element.get("provider", ""),
        description=documentation.text if documentation is not None and documentation.text else "",
    )


def descriptor_from_wsdl(document: str) -> ServiceDescriptor:
    """Parse one WSDL-style document back into a descriptor."""
    try:
        element = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ValidationError(f"malformed WSDL document: {exc}") from exc
    return _descriptor_from_element(element)


def catalog_to_wsdl(catalog: ServiceCatalog) -> str:
    """Render a whole catalog as one XML document."""
    root = ET.Element("catalog")
    for descriptor in catalog:
        root.append(_descriptor_element(descriptor))
    return ET.tostring(root, encoding="unicode")


def catalog_from_wsdl(document: str) -> ServiceCatalog:
    """Parse a ``<catalog>`` document back into a :class:`ServiceCatalog`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ValidationError(f"malformed WSDL document: {exc}") from exc
    if root.tag != "catalog":
        raise ValidationError(f"expected <catalog>, got <{root.tag}>")
    return ServiceCatalog(
        _descriptor_from_element(element) for element in root.findall("service")
    )
