"""Exception hierarchy for the content-adaptation framework.

Every exception raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while the
concrete subclasses keep failure modes distinguishable in tests and logs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "UnknownFormatError",
    "UnknownParameterError",
    "UnknownServiceError",
    "UnknownNodeError",
    "SatisfactionDomainError",
    "MonotonicityError",
    "GraphConstructionError",
    "NoPathError",
    "InfeasibleConfigurationError",
    "BudgetExceededError",
    "PlacementError",
    "ChainValidationError",
    "DiscoveryError",
    "PipelineError",
    "GatewayError",
    "GatewayProtocolError",
    "PolicyDeniedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError):
    """A profile, descriptor, or other input object failed validation."""


class UnknownFormatError(ReproError, KeyError):
    """A media format name was not found in the format registry."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"unknown media format: {self.name!r}"


class UnknownParameterError(ReproError, KeyError):
    """A QoS parameter name was not found where one was expected."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"unknown QoS parameter: {self.name!r}"


class UnknownServiceError(ReproError, KeyError):
    """A service identifier was not found in the catalog or graph."""

    def __init__(self, service_id: str) -> None:
        super().__init__(service_id)
        self.service_id = service_id

    def __str__(self) -> str:
        return f"unknown service: {self.service_id!r}"


class UnknownNodeError(ReproError, KeyError):
    """A network node identifier was not found in the topology."""

    def __init__(self, node_id: str) -> None:
        super().__init__(node_id)
        self.node_id = node_id

    def __str__(self) -> str:
        return f"unknown network node: {self.node_id!r}"


class SatisfactionDomainError(ReproError, ValueError):
    """A satisfaction function was evaluated or defined outside its domain."""


class MonotonicityError(ReproError, ValueError):
    """A satisfaction function violates the required monotonicity.

    The model of Richards et al. (Section 4.1 of the paper) requires every
    satisfaction function to increase monotonically from the minimum
    acceptable value to the ideal value.
    """


class GraphConstructionError(ReproError):
    """The adaptation graph could not be constructed from the given inputs."""


class NoPathError(ReproError):
    """The selection algorithm terminated with FAILURE (Step 3, Figure 4).

    Raised when the candidate set becomes empty before the receiver has been
    settled, i.e. no chain of trans-coding services can deliver the content
    within the stated constraints.
    """


class InfeasibleConfigurationError(ReproError):
    """No parameter configuration satisfies the stated constraints."""


class BudgetExceededError(ReproError):
    """An operation would exceed the user's remaining monetary budget."""


class PlacementError(ReproError):
    """A service could not be placed on (or found at) a network node."""


class ChainValidationError(ReproError):
    """An adaptation chain is structurally invalid.

    Examples: consecutive services with mismatched formats, repeated formats
    along the chain (violating the distinct-format rule of Section 4.2), or a
    chain that does not start at the sender / end at the receiver.
    """


class DiscoveryError(ReproError):
    """A service-discovery operation failed (bad advertisement, expired...)."""


class PipelineError(ReproError):
    """The runtime delivery pipeline failed to execute a chain."""


class GatewayError(ReproError):
    """The serving gateway could not complete an operation."""


class GatewayProtocolError(GatewayError):
    """An HTTP/1.1 message on a gateway connection could not be parsed."""


class PolicyDeniedError(ReproError):
    """A policy rule explicitly denied the request (HTTP 403 at the gateway)."""

    def __init__(self, reason: str, rule_id: str = "") -> None:
        super().__init__(reason)
        self.reason = reason
        self.rule_id = rule_id
