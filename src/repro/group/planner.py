"""The group planner: one shared tree per (content, receiver-class-set).

:class:`GroupPlanner` sits on top of the existing per-session machinery —
the heap selector via :class:`~repro.planner.batch.BatchPlanner`, the
shared :class:`~repro.core.optimizer.OptimizeMemo`, the per-session
:class:`~repro.planner.cache.PlanCache` — and adds exactly two things:

1. a *trie merge* of the per-class standalone-optimal chains into a
   :class:`~repro.group.tree.SharedAdaptationTree` (prefix sharing, see
   ``docs/ALGORITHM.md`` §9);
2. a generation-aware **tree cache**: whole group plans memoized under a
   combined fingerprint (:func:`repro.planner.combine_fingerprints`) so a
   repeated group against an unchanged world costs one dict lookup.

Work therefore scales with the number of *distinct receiver classes*, not
with the number of sessions: 1000 sessions in 32 classes cost 32 selector
runs (often fewer, through the per-session plan cache) and one tree
merge, and bandwidth is reserved once per tree edge via
:meth:`~repro.network.reservations.BandwidthLedger.reserve_group` — the
sublinearity the E22 benchmark (``bench_group_planner.py``) gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.group.request import GroupRequest
from repro.group.tree import SharedAdaptationTree, build_shared_tree
from repro.network.reservations import (
    BandwidthLedger,
    EdgeDemand,
    Reservation,
)
from repro.planner.batch import BatchPlanner, PlanRequest
from repro.planner.cache import PlanCache
from repro.planner.fingerprint import PlanFingerprint, combine_fingerprints
from repro.runtime.session import SessionPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.workloads.scenario import Scenario

__all__ = ["GroupPlan", "GroupPlanner"]


@dataclass(frozen=True)
class GroupPlan:
    """One planned group: the shared tree plus roll-up accounting."""

    tree: SharedAdaptationTree
    #: Receiver classes in the request (feasible branches + fallbacks).
    class_count: int
    #: Live sessions across every class.
    total_sessions: int

    @property
    def success(self) -> bool:
        """At least one class got its standalone-optimal branch."""
        return bool(self.tree.branches)

    @property
    def fallback_count(self) -> int:
        return len(self.tree.fallbacks)

    def optimize_calls(self) -> int:
        """Optimize() invocations spent across the planned branches."""
        return sum(
            branch.result.stats.optimize_calls
            for branch in self.tree.branches
            if branch.result.stats is not None
        )

    def satisfaction_by_class(self) -> Dict[str, float]:
        return {
            branch.class_id: branch.satisfaction
            for branch in self.tree.branches
        }


class GroupPlanner:
    """Plans shared adaptation trees through a generation-aware tree cache."""

    def __init__(
        self,
        batch: BatchPlanner,
        tree_cache: Optional[PlanCache] = None,
    ) -> None:
        self._batch = batch
        self._tree_cache = (
            tree_cache if tree_cache is not None else PlanCache(max_entries=256)
        )

    @classmethod
    def for_scenario(cls, scenario: "Scenario", **kwargs) -> "GroupPlanner":
        """A group planner over a fresh batch planner for ``scenario``.

        ``tree_cache`` is split off for this planner; every other keyword
        goes to :meth:`BatchPlanner.for_scenario`.
        """
        tree_cache = kwargs.pop("tree_cache", None)
        return cls(
            BatchPlanner.for_scenario(scenario, **kwargs),
            tree_cache=tree_cache,
        )

    @property
    def batch(self) -> BatchPlanner:
        return self._batch

    @property
    def tree_cache(self) -> PlanCache:
        return self._tree_cache

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _plan_request(self, request: GroupRequest, receiver) -> PlanRequest:
        return PlanRequest(
            content=request.content,
            device=receiver.device,
            user=request.user,
            sender_node=request.sender_node,
            receiver_node=request.receiver_node,
            context=request.context,
        )

    def fingerprint(self, request: GroupRequest) -> PlanFingerprint:
        """The tree-cache key: combined per-class fingerprints + stamp.

        Receiver order is canonicalized (sorted by class_id), so the same
        class set in any order hits the same tree.  Each member digest
        embeds the infrastructure generations, so any catalog / topology /
        placement / reservation change misses and recomputes.
        """
        parts = tuple(
            (
                receiver.class_id,
                receiver.sessions,
                self._batch.fingerprint(
                    self._plan_request(request, receiver)
                ).digest,
            )
            for receiver in sorted(
                request.receivers, key=lambda r: r.class_id
            )
        )
        return combine_fingerprints(parts, self._batch.current_stamp())

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _build(self, request: GroupRequest, use_cache: bool) -> GroupPlan:
        results = {}
        sessions = {}
        for receiver in request.receivers:
            plan_request = self._plan_request(request, receiver)
            plan: SessionPlan = (
                self._batch.plan(plan_request)
                if use_cache
                else self._batch.plan_uncached(plan_request)
            )
            results[receiver.class_id] = plan.result
            sessions[receiver.class_id] = receiver.sessions
        tree = build_shared_tree(results, sessions, self._batch.registry)
        return GroupPlan(
            tree=tree,
            class_count=len(request.receivers),
            total_sessions=request.total_sessions,
        )

    def plan_uncached(self, request: GroupRequest) -> GroupPlan:
        """Plan the group from scratch: no tree cache, no plan cache, no
        memo — the honest from-zero cost of one tree."""
        return self._build(request, use_cache=False)

    def plan(self, request: GroupRequest) -> GroupPlan:
        """Plan one group through the tree cache (single-flight on miss).

        Misses plan each distinct class through the batch planner's
        per-session cache and shared optimize memo, then merge once.
        """
        plan, _hit = self.plan_with_cache_info(request)
        return plan

    def plan_with_cache_info(
        self, request: GroupRequest
    ) -> Tuple[GroupPlan, bool]:
        """Like :meth:`plan`, also reporting whether the tree was cached."""
        self._tree_cache.purge_stale(self._batch.current_stamp())
        fingerprint = self.fingerprint(request)
        hit = fingerprint in self._tree_cache
        plan = self._tree_cache.get_or_compute(
            fingerprint, lambda: self._build(request, use_cache=True)
        )
        return plan, hit

    # ------------------------------------------------------------------
    # Reservation
    # ------------------------------------------------------------------
    def reserve(
        self,
        plan: GroupPlan,
        ledger: BandwidthLedger,
        sender_node: str,
        receiver_node: str,
        label: str = "group",
    ) -> List[Reservation]:
        """Reserve the tree's bandwidth: once per edge, all-or-nothing.

        Each tree edge maps to a node route exactly as per-session
        admission maps a chain hop (endpoints to the request's nodes,
        services through the placement, the route via the residual widest
        path); the whole set then goes through
        :meth:`BandwidthLedger.reserve_group`, so a mid-tree capacity
        failure releases every edge already held.  Routes are chosen
        against one residual snapshot taken before the group claims
        anything — the claim itself re-validates cumulatively.
        """
        if not plan.tree.edges:
            raise ValidationError("group plan has no tree edges to reserve")
        placement = self._batch.placement
        residual = ledger.residual_topology()
        demands: List[EdgeDemand] = []
        for edge in plan.tree.edges:
            source_node = self._node_for(edge.source, sender_node, receiver_node)
            target_node = self._node_for(edge.target, sender_node, receiver_node)
            if source_node == target_node:
                route: Tuple[str, ...] = (source_node,)
            else:
                found = residual.widest_path(source_node, target_node)
                if found is None:
                    raise ValidationError(
                        f"no route {source_node} -> {target_node} for tree "
                        f"edge {edge.source}->{edge.target}"
                    )
                route = tuple(found)
            demands.append(
                EdgeDemand(
                    route=route,
                    bandwidth_bps=edge.bandwidth_bps,
                    label=f"{label}:{edge.source}->{edge.target}@{edge.depth}",
                )
            )
        return ledger.reserve_group(demands, label=label)

    def _node_for(
        self, service_id: str, sender_node: str, receiver_node: str
    ) -> str:
        if service_id == "sender":
            return sender_node
        if service_id == "receiver":
            return receiver_node
        return self._batch.placement.node_of(service_id)
