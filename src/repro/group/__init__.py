"""Shared adaptation trees for multicast delivery to receiver classes.

``request`` defines the group request vocabulary (one content stream,
many receiver classes), ``tree`` the prefix-sharing trie merge of
per-class optimal chains, and ``planner`` the :class:`GroupPlanner` that
plans, caches, and reserves whole trees.  See ``docs/ALGORITHM.md`` §9
for the soundness argument and ``docs/SERVING.md`` for the
``POST /plan-group`` wire surface.
"""

from repro.group.planner import GroupPlan, GroupPlanner
from repro.group.request import GroupReceiver, GroupRequest
from repro.group.tree import (
    GroupBranch,
    SharedAdaptationTree,
    TreeEdge,
    build_shared_tree,
)

__all__ = [
    "GroupBranch",
    "GroupPlan",
    "GroupPlanner",
    "GroupReceiver",
    "GroupRequest",
    "SharedAdaptationTree",
    "TreeEdge",
    "build_shared_tree",
]
