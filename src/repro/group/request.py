"""Group planning requests: one content stream, many receiver classes.

A :class:`GroupRequest` describes the multicast-style situation the
per-session planner cannot exploit: *one* content item requested
concurrently by a heterogeneous population that clusters into a handful
of device classes.  Each :class:`GroupReceiver` names one class (a device
profile plus how many live sessions belong to it); the group planner
turns the whole request into a single shared adaptation tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ValidationError
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile

__all__ = ["GroupReceiver", "GroupRequest"]


@dataclass(frozen=True)
class GroupReceiver:
    """One receiver class: a device profile standing for ``sessions`` clients."""

    class_id: str
    device: DeviceProfile
    sessions: int = 1

    def __post_init__(self) -> None:
        if not self.class_id:
            raise ValidationError("receiver class_id must be non-empty")
        if self.sessions < 1:
            raise ValidationError(
                f"receiver class {self.class_id!r} needs sessions >= 1, "
                f"got {self.sessions}"
            )


@dataclass(frozen=True)
class GroupRequest:
    """Everything one shared-tree planning run consumes.

    Duplicate receiver entries are rejected here as well as at the wire
    boundary: two entries with the same ``class_id`` (or byte-identical
    device profiles under different ids) would double-count sessions and
    double-reserve the class's branch.
    """

    content: ContentProfile
    user: UserProfile
    sender_node: str
    receiver_node: str
    receivers: Tuple[GroupReceiver, ...] = field(default_factory=tuple)
    context: Optional[ContextProfile] = None

    def __post_init__(self) -> None:
        if not self.receivers:
            raise ValidationError("a group request needs at least one receiver")
        seen_ids = set()
        seen_devices = set()
        for receiver in self.receivers:
            if receiver.class_id in seen_ids:
                raise ValidationError(
                    f"duplicate receiver class_id {receiver.class_id!r}"
                )
            seen_ids.add(receiver.class_id)
            device_key = receiver.device.cache_key()
            if device_key in seen_devices:
                raise ValidationError(
                    f"receiver class {receiver.class_id!r} duplicates "
                    f"another entry's device profile "
                    f"({receiver.device.device_id!r})"
                )
            seen_devices.add(device_key)

    @property
    def total_sessions(self) -> int:
        return sum(receiver.sessions for receiver in self.receivers)
