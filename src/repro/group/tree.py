"""Shared adaptation trees: merge per-class optimal chains by prefix.

The paper plans one adaptation *chain* per receiver.  When many receiver
classes request the same content, their optimal chains usually agree on a
prefix — the same source variant flowing through the same services in the
same formats — and only diverge where per-class constraints start to
bite.  A :class:`SharedAdaptationTree` is exactly that trie: each edge is
one hop of one or more class chains, annotated with the classes sharing
it, so shared-link bandwidth can be reserved **once per tree edge**
instead of once per session.

Prefix-sharing soundness (the condition :func:`build_shared_tree`
enforces, argued in ``docs/ALGORITHM.md`` §9): two classes may share a
hop only if their chains are *byte-identical up to and including that
hop* — same service sequence, same format sequence, and the same
delivered configuration.  Under that condition the intermediate stream on
the shared hop is one stream, so a single reservation carries every
sharing class, and each class's branch remains literally its standalone
optimal chain — per-class satisfaction is unchanged by construction.
Classes whose chains cannot merge simply do not share (a degenerate tree
is per-session planning); classes that are infeasible standalone are
reported as fallbacks, never silently degraded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.configuration import Configuration
from repro.core.selection import SelectionResult
from repro.errors import ValidationError
from repro.formats.registry import FormatRegistry

__all__ = [
    "TreeEdge",
    "GroupBranch",
    "SharedAdaptationTree",
    "build_shared_tree",
]

#: One hop of a chain: (source service, target service, carried format).
Hop = Tuple[str, str, str]


def _chain_hops(result: SelectionResult) -> Tuple[Hop, ...]:
    return tuple(zip(result.path, result.path[1:], result.formats))


def _config_key(configuration: Configuration) -> Tuple[Tuple[str, float], ...]:
    return tuple(sorted(configuration.as_dict().items()))


@dataclass(frozen=True)
class TreeEdge:
    """One hop of the shared tree and the classes whose streams ride it."""

    source: str
    target: str
    format: str
    configuration: Configuration
    #: Bits/second one reservation on this edge must carry.
    bandwidth_bps: float
    #: Receiver classes sharing this edge (sorted, >= 1).
    classes: Tuple[str, ...]
    #: Hop index within the chain (0 = the hop leaving the sender).
    depth: int

    @property
    def shared(self) -> bool:
        return len(self.classes) > 1


@dataclass(frozen=True)
class GroupBranch:
    """One receiver class's leaf: its standalone-optimal chain, verbatim."""

    class_id: str
    sessions: int
    result: SelectionResult

    @property
    def satisfaction(self) -> float:
        return self.result.satisfaction


@dataclass(frozen=True)
class SharedAdaptationTree:
    """The merged trie over every feasible class chain.

    ``edges`` is canonically ordered (configuration key, then hop prefix),
    so same-seed builds are bit-identical and :meth:`digest` is a stable
    identity for the whole tree.
    """

    edges: Tuple[TreeEdge, ...]
    branches: Tuple[GroupBranch, ...]
    #: Classes with no standalone-feasible chain: (class_id, reason) pairs.
    #: These fall back to whatever per-session handling the caller applies.
    fallbacks: Tuple[Tuple[str, str], ...] = ()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def branch_count(self) -> int:
        """Distinct leaf chains (classes with identical plans collapse)."""
        leaves = {
            (_config_key(b.result.configuration), _chain_hops(b.result))
            for b in self.branches
        }
        return len(leaves)

    @property
    def shared_edge_count(self) -> int:
        return sum(1 for edge in self.edges if edge.shared)

    def tree_bandwidth_bps(self) -> float:
        """Aggregate demand with tree sharing: each edge reserved once."""
        return sum(edge.bandwidth_bps for edge in self.edges)

    def per_session_bandwidth_bps(self) -> float:
        """Aggregate demand of the per-session baseline: every session of
        every class reserves its whole chain independently."""
        total = 0.0
        for branch in self.branches:
            chain_bps = sum(
                edge.bandwidth_bps
                for edge in self.edges
                if branch.class_id in edge.classes
            )
            total += branch.sessions * chain_bps
        return total

    def saved_bandwidth_bps(self) -> float:
        return max(
            0.0, self.per_session_bandwidth_bps() - self.tree_bandwidth_bps()
        )

    def digest(self) -> str:
        """SHA-256 over the canonical tree content (no wall-clock, no ids)."""
        key = (
            tuple(
                (
                    edge.source,
                    edge.target,
                    edge.format,
                    _config_key(edge.configuration),
                    round(edge.bandwidth_bps, 6),
                    edge.classes,
                    edge.depth,
                )
                for edge in self.edges
            ),
            tuple(
                (
                    branch.class_id,
                    branch.sessions,
                    branch.result.path,
                    branch.result.formats,
                    round(branch.result.satisfaction, 9),
                )
                for branch in sorted(self.branches, key=lambda b: b.class_id)
            ),
            tuple(sorted(self.fallbacks)),
        )
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def build_shared_tree(
    results: Mapping[str, SelectionResult],
    sessions: Mapping[str, int],
    registry: FormatRegistry,
) -> SharedAdaptationTree:
    """Merge per-class selection results into one shared tree.

    ``results`` maps receiver class_id to that class's *standalone*
    selection result (the heap selector's output, untouched); ``sessions``
    maps class_id to its live session count.  Infeasible classes become
    fallbacks.  The merge is a trie insert per chain: the trie key at
    depth ``d`` is the full (configuration, hops[:d+1]) prefix, so classes
    share an edge exactly when the prefix-sharing condition holds.
    """
    if not results:
        raise ValidationError("cannot build a shared tree from zero classes")
    branches: List[GroupBranch] = []
    fallbacks: List[Tuple[str, str]] = []
    # Trie: full prefix key -> sorted class ids sharing that edge.
    sharers: Dict[Tuple, List[str]] = {}
    edge_meta: Dict[Tuple, Tuple[str, str, str, Configuration, int]] = {}
    for class_id in sorted(results):
        result = results[class_id]
        count = sessions.get(class_id, 1)
        if not result.success:
            fallbacks.append(
                (class_id, result.failure_reason or "no feasible chain")
            )
            continue
        if result.configuration is None:  # pragma: no cover - success implies
            raise ValidationError(
                f"class {class_id!r} succeeded without a configuration"
            )
        branches.append(
            GroupBranch(class_id=class_id, sessions=count, result=result)
        )
        config_key = _config_key(result.configuration)
        hops = _chain_hops(result)
        for depth in range(len(hops)):
            prefix = (config_key, hops[: depth + 1])
            sharers.setdefault(prefix, []).append(class_id)
            if prefix not in edge_meta:
                source, target, fmt_name = hops[depth]
                edge_meta[prefix] = (
                    source,
                    target,
                    fmt_name,
                    result.configuration,
                    depth,
                )
    edges: List[TreeEdge] = []
    for prefix in sorted(sharers, key=repr):
        source, target, fmt_name, configuration, depth = edge_meta[prefix]
        bandwidth = configuration.required_bandwidth(registry.get(fmt_name))
        edges.append(
            TreeEdge(
                source=source,
                target=target,
                format=fmt_name,
                configuration=configuration,
                bandwidth_bps=bandwidth,
                classes=tuple(sorted(sharers[prefix])),
                depth=depth,
            )
        )
    return SharedAdaptationTree(
        edges=tuple(edges),
        branches=tuple(branches),
        fallbacks=tuple(sorted(fallbacks)),
    )
