"""The intermediary profile: what one proxy node offers.

Section 3: "the profile of an intermediary would usually include a
description of all the adaptation services that an intermediary can
provide ... [and] information about the available resources at the
intermediary (such as CPU cycles, memory) to carry out the services."

An :class:`IntermediaryProfile` therefore couples a network node id with the
service descriptors hosted there and the node's spare resources.  A set of
intermediary profiles is exactly what graph construction consumes: it
determines both the intermediate vertices (the services) and their
placement (which host, hence which bandwidths apply).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import ValidationError
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = ["IntermediaryProfile", "merge_intermediaries"]


class IntermediaryProfile:
    """Services and spare resources advertised by one intermediary node."""

    def __init__(
        self,
        node_id: str,
        services: Sequence[ServiceDescriptor],
        available_cpu_mips: float = 1000.0,
        available_memory_mb: float = 1024.0,
        operator: str = "",
    ) -> None:
        if not node_id:
            raise ValidationError("node_id must be non-empty")
        if available_cpu_mips < 0 or available_memory_mb < 0:
            raise ValidationError(f"{node_id}: resources must be >= 0")
        for descriptor in services:
            if descriptor.kind is not ServiceKind.TRANSCODER:
                raise ValidationError(
                    f"{node_id}: intermediaries host transcoders, not "
                    f"{descriptor.kind.value} ({descriptor.service_id!r})"
                )
        ids = [d.service_id for d in services]
        if len(set(ids)) != len(ids):
            raise ValidationError(f"{node_id}: duplicate hosted service ids")
        self.node_id = node_id
        self.services: List[ServiceDescriptor] = list(services)
        self.available_cpu_mips = available_cpu_mips
        self.available_memory_mb = available_memory_mb
        self.operator = operator

    def service_ids(self) -> List[str]:
        return [d.service_id for d in self.services]

    def hosts(self, service_id: str) -> bool:
        return any(d.service_id == service_id for d in self.services)

    def can_run(self, descriptor: ServiceDescriptor, input_bps: float = 1e6) -> bool:
        """Whether spare resources suffice to run one more instance."""
        return (
            descriptor.cpu_required(input_bps) <= self.available_cpu_mips
            and descriptor.memory_mb <= self.available_memory_mb
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntermediaryProfile({self.node_id!r}, "
            f"services={self.service_ids()})"
        )


def merge_intermediaries(
    profiles: Iterable[IntermediaryProfile],
    topology: NetworkTopology,
) -> tuple:
    """Fold intermediary profiles into (catalog, placement).

    This is the glue step before graph construction: the union of all
    advertised services becomes the service catalog, and each service is
    placed on its advertiser's node.  A service id advertised by two
    intermediaries is rejected — replicate services under distinct ids
    (``T3@nodeA``, ``T3@nodeB``), as the synthetic workload generator does.
    """
    catalog = ServiceCatalog()
    placement = ServicePlacement(topology)
    seen_nodes: Dict[str, str] = {}
    for profile in profiles:
        for descriptor in profile.services:
            owner = seen_nodes.get(descriptor.service_id)
            if owner is not None:
                raise ValidationError(
                    f"service {descriptor.service_id!r} advertised by both "
                    f"{owner!r} and {profile.node_id!r}; replicate under "
                    f"distinct ids instead"
                )
            seen_nodes[descriptor.service_id] = profile.node_id
            catalog.add(descriptor)
            placement.place(descriptor.service_id, profile.node_id)
    return catalog, placement
