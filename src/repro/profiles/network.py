"""The network profile: measured link characteristics.

Section 3: providing personalized content "requires collecting information
about the available resources in the network, such as the maximum delay,
error rate, and available throughput on every link over the content
delivery path".  A :class:`NetworkProfile` is that collection — a list of
:class:`LinkMeasurement` records — decoupled from the live topology so it
can be serialized, aged, and compared like any other profile document.

:meth:`NetworkProfile.from_topology` snapshots a simulator topology;
:meth:`NetworkProfile.to_topology` rebuilds one (round-trip used in tests
and by scenarios loaded from serialized form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.network.topology import Link, NetworkNode, NetworkTopology

__all__ = ["LinkMeasurement", "NetworkProfile"]


@dataclass(frozen=True)
class LinkMeasurement:
    """One measured link: endpoints plus QoS characteristics."""

    a: str
    b: str
    throughput_bps: float
    delay_ms: float = 1.0
    loss_rate: float = 0.0
    cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise ValidationError("link endpoints must be non-empty")
        if self.a == self.b:
            raise ValidationError(f"self-measurement at {self.a!r}")
        if self.throughput_bps < 0:
            raise ValidationError("throughput must be >= 0")
        if self.delay_ms < 0:
            raise ValidationError("delay must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValidationError("loss rate must lie in [0, 1)")

    def key(self) -> Tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class NetworkProfile:
    """A snapshot of the delivery network's measured characteristics."""

    def __init__(
        self,
        measurements: Sequence[LinkMeasurement],
        node_resources: Optional[Dict[str, Tuple[float, float]]] = None,
    ) -> None:
        self._measurements: Dict[Tuple[str, str], LinkMeasurement] = {}
        for measurement in measurements:
            key = measurement.key()
            if key in self._measurements:
                raise ValidationError(f"duplicate measurement for link {key}")
            self._measurements[key] = measurement
        #: node_id -> (cpu_mips, memory_mb); nodes appearing only in links
        #: get default resources on reconstruction.
        self.node_resources: Dict[str, Tuple[float, float]] = dict(node_resources or {})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def measurements(self) -> List[LinkMeasurement]:
        return list(self._measurements.values())

    def throughput(self, a: str, b: str) -> Optional[float]:
        """Measured throughput of the direct link, or None if unmeasured."""
        key = (a, b) if a <= b else (b, a)
        measurement = self._measurements.get(key)
        return measurement.throughput_bps if measurement else None

    def node_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for measurement in self._measurements.values():
            seen.setdefault(measurement.a)
            seen.setdefault(measurement.b)
        for node_id in self.node_resources:
            seen.setdefault(node_id)
        return list(seen)

    def __len__(self) -> int:
        return len(self._measurements)

    # ------------------------------------------------------------------
    # Topology round-trip
    # ------------------------------------------------------------------
    @classmethod
    def from_topology(cls, topology: NetworkTopology) -> "NetworkProfile":
        """Snapshot a live topology into a profile document."""
        measurements = [
            LinkMeasurement(
                a=link.a,
                b=link.b,
                throughput_bps=link.bandwidth_bps,
                delay_ms=link.delay_ms,
                loss_rate=link.loss_rate,
                cost=link.cost,
            )
            for link in topology.links()
        ]
        resources = {
            node.node_id: (node.cpu_mips, node.memory_mb)
            for node in topology.nodes()
        }
        return cls(measurements, resources)

    def to_topology(self) -> NetworkTopology:
        """Rebuild a simulator topology from this profile."""
        topology = NetworkTopology()
        for node_id in self.node_ids():
            cpu, memory = self.node_resources.get(node_id, (1000.0, 1024.0))
            topology.add_node(NetworkNode(node_id, cpu, memory))
        for measurement in self._measurements.values():
            topology.add_link(
                Link(
                    a=measurement.a,
                    b=measurement.b,
                    bandwidth_bps=measurement.throughput_bps,
                    delay_ms=measurement.delay_ms,
                    loss_rate=measurement.loss_rate,
                    cost=measurement.cost,
                )
            )
        return topology

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkProfile(links={len(self._measurements)})"
