"""The six profile types of Section 3.

"The flexibility of any system to provide content personalization depends
mainly on the amount of information available on a number of aspects
involved in the delivery of the content to the user" — the paper enumerates
six such aspects, each modeled here as a profile class:

- :class:`~repro.profiles.user.UserProfile` — preferences as satisfaction
  functions, adaptation policies, and the monetary budget;
- :class:`~repro.profiles.content.ContentProfile` — the available variants
  of the content (MPEG-7 stand-in);
- :class:`~repro.profiles.context.ContextProfile` — dynamic physical /
  social / organizational context (MPEG-21 usage environment stand-in);
- :class:`~repro.profiles.device.DeviceProfile` — hardware and software
  capabilities of the rendering device (UAProf / MPEG-21 stand-in);
- :class:`~repro.profiles.network.NetworkProfile` — measured link
  characteristics along the delivery path;
- :class:`~repro.profiles.intermediary.IntermediaryProfile` — the services
  and spare resources an intermediary advertises.

All profiles serialize to/from plain dictionaries
(:mod:`repro.profiles.serialization`), standing in for the XML documents
(UAProf, MPEG-21 DIA) the paper cites.
"""

from repro.profiles.user import AdaptationPolicy, UserProfile
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.network import LinkMeasurement, NetworkProfile
from repro.profiles.intermediary import IntermediaryProfile
from repro.profiles.serialization import profile_from_dict, profile_to_dict

__all__ = [
    "UserProfile",
    "AdaptationPolicy",
    "ContentProfile",
    "ContextProfile",
    "DeviceProfile",
    "NetworkProfile",
    "LinkMeasurement",
    "IntermediaryProfile",
    "profile_to_dict",
    "profile_from_dict",
]
