"""The content profile: what the sender can deliver.

Section 3: the content profile carries "storage features, variants, author
and production, usage, and many other metadata" (the MPEG-7 stand-in).  For
the algorithms, the load-bearing part is the list of
:class:`~repro.formats.variants.ContentVariant` objects — Section 4.2 wires
"each output link of the sender vertex ... to one variant with a certain
format".
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.formats.variants import ContentVariant
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = ["ContentProfile"]


class ContentProfile:
    """Descriptive profile of one content item and its stored variants."""

    def __init__(
        self,
        content_id: str,
        variants: Sequence[ContentVariant],
        title: str = "",
        author: str = "",
        metadata: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not content_id:
            raise ValidationError("content_id must be non-empty")
        if not variants:
            raise ValidationError("a content profile needs at least one variant")
        names = [v.format.name for v in variants]
        if len(set(names)) != len(names):
            raise ValidationError(
                "content variants must have pairwise distinct formats"
            )
        self.content_id = content_id
        self.title = title or content_id
        self.author = author
        self.metadata: Dict[str, str] = dict(metadata or {})
        self._variants: Dict[str, ContentVariant] = {
            v.format.name: v for v in variants
        }

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    @property
    def variants(self) -> List[ContentVariant]:
        return list(self._variants.values())

    def variant_for(self, format_name: str) -> ContentVariant:
        """The stored variant encoded in ``format_name``."""
        try:
            return self._variants[format_name]
        except KeyError:
            raise ValidationError(
                f"content {self.content_id!r} has no variant in format "
                f"{format_name!r} (has: {sorted(self._variants)})"
            ) from None

    def format_names(self) -> List[str]:
        """The sender's output link labels (one per variant)."""
        return list(self._variants)

    def has_format(self, format_name: str) -> bool:
        return format_name in self._variants

    # ------------------------------------------------------------------
    # Identity (plan-cache fingerprints)
    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple:
        """A stable, hashable tuple covering every field of the profile."""
        return (
            self.content_id,
            self.title,
            self.author,
            tuple(sorted(self.metadata.items())),
            tuple(v.cache_key() for v in self._variants.values()),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContentProfile):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    # ------------------------------------------------------------------
    # Graph integration
    # ------------------------------------------------------------------
    def sender_descriptor(self, service_id: str = "sender") -> ServiceDescriptor:
        """The sender pseudo-vertex of Section 4.2.

        Output links are exactly the variant formats; the sender has no
        input links and performs no transcoding, so it carries no caps (its
        quality limits live in each variant's configuration).
        """
        return ServiceDescriptor(
            service_id=service_id,
            output_formats=tuple(self._variants),
            kind=ServiceKind.SENDER,
            description=f"content source for {self.content_id!r}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContentProfile({self.content_id!r}, formats={self.format_names()})"
