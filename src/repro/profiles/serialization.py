"""Dict/JSON serialization for profiles.

The paper's profiles are XML documents (UAProf RDF, MPEG-21 DIA, MPEG-7).
We stand in with plain JSON-compatible dictionaries: every profile class
round-trips through :func:`profile_to_dict` / :func:`profile_from_dict`,
with a ``"profile"`` tag selecting the type.  Satisfaction functions are
serialized by shape (linear, piecewise, step, logistic, table) so user
profiles survive the round trip intact.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence

from repro.core.configuration import Configuration
from repro.core.satisfaction import (
    Combiner,
    GeometricCombiner,
    HarmonicCombiner,
    LinearSatisfaction,
    LogisticSatisfaction,
    MinimumCombiner,
    PiecewiseLinearSatisfaction,
    SatisfactionFunction,
    StepSatisfaction,
    WeightedHarmonicCombiner,
)
from repro.errors import ValidationError
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.intermediary import IntermediaryProfile
from repro.profiles.network import LinkMeasurement, NetworkProfile
from repro.profiles.user import AdaptationPolicy, UserProfile
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = [
    "satisfaction_to_dict",
    "satisfaction_from_dict",
    "combiner_to_dict",
    "combiner_from_dict",
    "descriptor_to_dict",
    "descriptor_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "group_receiver_to_dict",
    "group_receivers_from_list",
]


def _require(data: Mapping[str, Any], key: str, what: str) -> Any:
    """``data[key]``, raising the repo's typed error instead of ``KeyError``.

    Wire documents come from untrusted JSON; a missing or mistyped field
    must surface as a :class:`ValidationError` the gateway can map to a
    400, never a bare ``KeyError``/``TypeError`` traceback.
    """
    try:
        return data[key]
    except (KeyError, TypeError, IndexError):
        raise ValidationError(f"{what} is missing required key {key!r}") from None


def _mapping(value: Any, what: str) -> Mapping[str, Any]:
    """``value`` as a mapping, raising :class:`ValidationError` otherwise."""
    if not isinstance(value, Mapping):
        raise ValidationError(
            f"{what} must be a JSON object, got {type(value).__name__}"
        )
    return value


def _sequence(value: Any, what: str) -> Sequence[Any]:
    """``value`` as a list/tuple, raising :class:`ValidationError` otherwise.

    Strings are sequences too, but a wire document supplying one where a
    list belongs is always a mistake — reject them explicitly.
    """
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise ValidationError(
            f"{what} must be a JSON array, got {type(value).__name__}"
        )
    return value


# ----------------------------------------------------------------------
# Satisfaction functions
# ----------------------------------------------------------------------

def satisfaction_to_dict(fn: SatisfactionFunction) -> Dict[str, Any]:
    """Serialize a satisfaction function by shape."""
    if isinstance(fn, LinearSatisfaction):
        return {"shape": "linear", "minimum": fn.minimum, "ideal": fn.ideal}
    if isinstance(fn, PiecewiseLinearSatisfaction):
        return {"shape": "piecewise", "knots": [list(k) for k in fn.knots]}
    if isinstance(fn, StepSatisfaction):
        return {"shape": "step", "steps": [list(s) for s in fn._steps]}
    if isinstance(fn, LogisticSatisfaction):
        return {
            "shape": "logistic",
            "minimum": fn.minimum,
            "ideal": fn.ideal,
            "steepness": fn._steepness,
        }
    raise ValidationError(
        f"cannot serialize satisfaction function of type {type(fn).__name__}"
    )


def satisfaction_from_dict(data: Mapping[str, Any]) -> SatisfactionFunction:
    """Inverse of :func:`satisfaction_to_dict`."""
    data = _mapping(data, "satisfaction function document")
    shape = data.get("shape")
    if shape == "linear":
        return LinearSatisfaction(
            _require(data, "minimum", "linear satisfaction"),
            _require(data, "ideal", "linear satisfaction"),
        )
    if shape == "piecewise":
        knots = _sequence(
            _require(data, "knots", "piecewise satisfaction"),
            "piecewise satisfaction 'knots'",
        )
        return PiecewiseLinearSatisfaction(
            [tuple(_sequence(k, "piecewise satisfaction knot")) for k in knots]
        )
    if shape == "step":
        steps = _sequence(
            _require(data, "steps", "step satisfaction"),
            "step satisfaction 'steps'",
        )
        return StepSatisfaction(
            [tuple(_sequence(s, "step satisfaction step")) for s in steps]
        )
    if shape == "logistic":
        return LogisticSatisfaction(
            _require(data, "minimum", "logistic satisfaction"),
            _require(data, "ideal", "logistic satisfaction"),
            data.get("steepness", 8.0),
        )
    raise ValidationError(f"unknown satisfaction shape: {shape!r}")


# ----------------------------------------------------------------------
# Combiners
# ----------------------------------------------------------------------

def combiner_to_dict(combiner: Combiner) -> Dict[str, Any]:
    if isinstance(combiner, WeightedHarmonicCombiner):
        return {"kind": combiner.name, "weights": list(combiner.weights)}
    if isinstance(combiner, (HarmonicCombiner, MinimumCombiner, GeometricCombiner)):
        return {"kind": combiner.name}
    raise ValidationError(f"cannot serialize combiner {type(combiner).__name__}")


def combiner_from_dict(data: Mapping[str, Any]) -> Combiner:
    data = _mapping(data, "combiner document")
    kind = data.get("kind")
    if kind == "harmonic":
        return HarmonicCombiner()
    if kind == "weighted-harmonic":
        return WeightedHarmonicCombiner(
            _sequence(
                _require(data, "weights", "weighted-harmonic combiner"),
                "weighted-harmonic combiner 'weights'",
            )
        )
    if kind == "minimum":
        return MinimumCombiner()
    if kind == "geometric":
        return GeometricCombiner()
    raise ValidationError(f"unknown combiner kind: {kind!r}")


# ----------------------------------------------------------------------
# Service descriptors (used by intermediary profiles)
# ----------------------------------------------------------------------

def descriptor_to_dict(descriptor: ServiceDescriptor) -> Dict[str, Any]:
    return {
        "service_id": descriptor.service_id,
        "input_formats": list(descriptor.input_formats),
        "output_formats": list(descriptor.output_formats),
        "output_caps": dict(descriptor.output_caps),
        "cost": descriptor.cost,
        "cpu_factor": descriptor.cpu_factor,
        "memory_mb": descriptor.memory_mb,
        "kind": descriptor.kind.value,
        "provider": descriptor.provider,
        "description": descriptor.description,
        "tier": descriptor.tier,
    }


def descriptor_from_dict(data: Mapping[str, Any]) -> ServiceDescriptor:
    data = _mapping(data, "service descriptor document")
    return ServiceDescriptor(
        service_id=_require(data, "service_id", "service descriptor"),
        input_formats=tuple(
            _sequence(data.get("input_formats", ()),
                      "service descriptor 'input_formats'")
        ),
        output_formats=tuple(
            _sequence(data.get("output_formats", ()),
                      "service descriptor 'output_formats'")
        ),
        output_caps=dict(
            _mapping(data.get("output_caps", {}),
                     "service descriptor 'output_caps'")
        ),
        cost=data.get("cost", 0.0),
        cpu_factor=data.get("cpu_factor", 1.0),
        memory_mb=data.get("memory_mb", 16.0),
        kind=ServiceKind(data.get("kind", "transcoder")),
        provider=data.get("provider", ""),
        description=data.get("description", ""),
        tier=data.get("tier", "sw"),
    )


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------

def _user_to_dict(profile: UserProfile) -> Dict[str, Any]:
    return {
        "profile": "user",
        "user_id": profile.user_id,
        "display_name": profile.display_name,
        "budget": profile.budget,
        "max_delay_ms": profile.max_delay_ms,
        "combiner": combiner_to_dict(profile.combiner),
        "preferences": {
            name: satisfaction_to_dict(fn)
            for name, fn in profile.satisfaction().functions.items()
        },
        "policies": [
            {"parameter": p.parameter, "priority": p.priority}
            for p in profile.policies
        ],
    }


def _user_from_dict(data: Mapping[str, Any]) -> UserProfile:
    return UserProfile(
        user_id=_require(data, "user_id", "user profile"),
        display_name=data.get("display_name", ""),
        budget=data.get("budget", float("inf")),
        max_delay_ms=data.get("max_delay_ms", float("inf")),
        combiner=combiner_from_dict(_require(data, "combiner", "user profile")),
        satisfaction_functions={
            name: satisfaction_from_dict(fn_data)
            for name, fn_data in _mapping(
                _require(data, "preferences", "user profile"),
                "user profile 'preferences'",
            ).items()
        },
        policies=[
            AdaptationPolicy(
                _require(p, "parameter", "adaptation policy"),
                _require(p, "priority", "adaptation policy"),
            )
            for p in _sequence(
                data.get("policies", ()), "user profile 'policies'"
            )
        ],
    )


def _content_to_dict(profile: ContentProfile) -> Dict[str, Any]:
    return {
        "profile": "content",
        "content_id": profile.content_id,
        "title": profile.title,
        "author": profile.author,
        "metadata": dict(profile.metadata),
        "variants": [
            {
                "format": variant.format.name,
                "configuration": variant.configuration.as_dict(),
                "title": variant.title,
                "metadata": dict(variant.metadata),
            }
            for variant in profile.variants
        ],
    }


def _content_from_dict(
    data: Mapping[str, Any], registry: FormatRegistry
) -> ContentProfile:
    variants = [
        ContentVariant(
            format=registry.get(_require(v, "format", "content variant")),
            configuration=Configuration(
                _mapping(
                    _require(v, "configuration", "content variant"),
                    "content variant 'configuration'",
                )
            ),
            title=v.get("title", ""),
            metadata=dict(_mapping(v.get("metadata", {}),
                                   "content variant 'metadata'")),
        )
        for v in _sequence(
            _require(data, "variants", "content profile"),
            "content profile 'variants'",
        )
    ]
    return ContentProfile(
        content_id=_require(data, "content_id", "content profile"),
        variants=variants,
        title=data.get("title", ""),
        author=data.get("author", ""),
        metadata=dict(data.get("metadata", {})),
    )


def _context_to_dict(profile: ContextProfile) -> Dict[str, Any]:
    return {
        "profile": "context",
        "location": profile.location,
        "activity": profile.activity,
        "noise_level_db": profile.noise_level_db,
        "illumination_lux": profile.illumination_lux,
        "local_time_hour": profile.local_time_hour,
        "organizational_role": profile.organizational_role,
        "attributes": dict(profile.attributes),
    }


def _context_from_dict(data: Mapping[str, Any]) -> ContextProfile:
    return ContextProfile(
        location=data.get("location", ""),
        activity=data.get("activity", "idle"),
        noise_level_db=data.get("noise_level_db", 40.0),
        illumination_lux=data.get("illumination_lux", 300.0),
        local_time_hour=data.get("local_time_hour"),
        organizational_role=data.get("organizational_role", ""),
        attributes=dict(data.get("attributes", {})),
    )


def _device_to_dict(profile: DeviceProfile) -> Dict[str, Any]:
    return {
        "profile": "device",
        "device_id": profile.device_id,
        "decoders": list(profile.decoders),
        "max_resolution": profile.max_resolution,
        "max_color_depth": profile.max_color_depth,
        "max_frame_rate": profile.max_frame_rate,
        "max_audio_kbps": profile.max_audio_kbps,
        "cpu_mips": profile.cpu_mips,
        "memory_mb": profile.memory_mb,
        "vendor": profile.vendor,
        "model": profile.model,
        "attributes": dict(profile.attributes),
    }


def _device_from_dict(data: Mapping[str, Any]) -> DeviceProfile:
    return DeviceProfile(
        device_id=_require(data, "device_id", "device profile"),
        decoders=list(
            _sequence(
                _require(data, "decoders", "device profile"),
                "device profile 'decoders'",
            )
        ),
        max_resolution=data.get("max_resolution"),
        max_color_depth=data.get("max_color_depth"),
        max_frame_rate=data.get("max_frame_rate"),
        max_audio_kbps=data.get("max_audio_kbps"),
        cpu_mips=data.get("cpu_mips", 500.0),
        memory_mb=data.get("memory_mb", 256.0),
        vendor=data.get("vendor", ""),
        model=data.get("model", ""),
        attributes=dict(data.get("attributes", {})),
    )


def _network_to_dict(profile: NetworkProfile) -> Dict[str, Any]:
    return {
        "profile": "network",
        "measurements": [
            {
                "a": m.a,
                "b": m.b,
                "throughput_bps": m.throughput_bps,
                "delay_ms": m.delay_ms,
                "loss_rate": m.loss_rate,
                "cost": m.cost,
            }
            for m in profile.measurements
        ],
        "node_resources": {
            node: list(resources)
            for node, resources in profile.node_resources.items()
        },
    }


def _network_from_dict(data: Mapping[str, Any]) -> NetworkProfile:
    measurements = [
        LinkMeasurement(
            a=_require(m, "a", "link measurement"),
            b=_require(m, "b", "link measurement"),
            throughput_bps=_require(m, "throughput_bps", "link measurement"),
            delay_ms=m.get("delay_ms", 1.0),
            loss_rate=m.get("loss_rate", 0.0),
            cost=m.get("cost", 0.0),
        )
        for m in _sequence(
            _require(data, "measurements", "network profile"),
            "network profile 'measurements'",
        )
    ]
    resources = {
        node: tuple(_sequence(values, f"node {node!r} resources"))
        for node, values in _mapping(
            data.get("node_resources", {}), "network profile 'node_resources'"
        ).items()
    }
    return NetworkProfile(measurements, resources)


def _intermediary_to_dict(profile: IntermediaryProfile) -> Dict[str, Any]:
    return {
        "profile": "intermediary",
        "node_id": profile.node_id,
        "services": [descriptor_to_dict(d) for d in profile.services],
        "available_cpu_mips": profile.available_cpu_mips,
        "available_memory_mb": profile.available_memory_mb,
        "operator": profile.operator,
    }


def _intermediary_from_dict(data: Mapping[str, Any]) -> IntermediaryProfile:
    return IntermediaryProfile(
        node_id=_require(data, "node_id", "intermediary profile"),
        services=[
            descriptor_from_dict(d)
            for d in _sequence(
                _require(data, "services", "intermediary profile"),
                "intermediary profile 'services'",
            )
        ],
        available_cpu_mips=data.get("available_cpu_mips", 1000.0),
        available_memory_mb=data.get("available_memory_mb", 1024.0),
        operator=data.get("operator", ""),
    )


# ----------------------------------------------------------------------
# Group requests (receiver-class lists for POST /plan-group)
# ----------------------------------------------------------------------

def group_receiver_to_dict(receiver: Any) -> Dict[str, Any]:
    """Serialize one :class:`~repro.group.request.GroupReceiver`."""
    return {
        "class_id": receiver.class_id,
        "device": _device_to_dict(receiver.device),
        "sessions": receiver.sessions,
    }


def group_receivers_from_list(value: Any) -> tuple:
    """Decode a wire ``receivers`` array into ``GroupReceiver`` objects.

    Strict like every decoder here: mistyped entries, missing fields, and
    — critically — *duplicate* receivers raise :class:`ValidationError`
    (→ 400 at the gateway).  Two entries duplicate each other when they
    share a ``class_id`` or carry byte-identical device profiles; either
    way the group would double-count sessions and double-reserve that
    class's branch.
    """
    # Imported lazily: repro.group imports the planner stack, which this
    # wire-codec module must not pull in at import time (repro.profiles
    # is loaded by everything, including repro.group itself).
    from repro.group.request import GroupReceiver

    entries = _sequence(value, "group request 'receivers'")
    if not entries:
        raise ValidationError("group request 'receivers' must be non-empty")
    receivers = []
    seen_ids: Dict[str, int] = {}
    seen_devices: Dict[Any, str] = {}
    for index, entry in enumerate(entries):
        entry = _mapping(entry, f"receivers[{index}]")
        class_id = _require(entry, "class_id", f"receivers[{index}]")
        if not isinstance(class_id, str) or not class_id:
            raise ValidationError(
                f"receivers[{index}].class_id must be a non-empty string"
            )
        if class_id in seen_ids:
            raise ValidationError(
                f"duplicate receiver class_id {class_id!r} "
                f"(receivers[{seen_ids[class_id]}] and receivers[{index}])"
            )
        seen_ids[class_id] = index
        device_data = _mapping(
            _require(entry, "device", f"receivers[{index}]"),
            f"receivers[{index}].device",
        )
        if device_data.get("profile") != "device":
            raise ValidationError(
                f"receivers[{index}].device carries profile tag "
                f"{device_data.get('profile')!r}"
            )
        device = _device_from_dict(device_data)
        device_key = device.cache_key()
        if device_key in seen_devices:
            raise ValidationError(
                f"receiver class {class_id!r} duplicates the device profile "
                f"of class {seen_devices[device_key]!r}"
            )
        seen_devices[device_key] = class_id
        sessions = entry.get("sessions", 1)
        if not isinstance(sessions, int) or isinstance(sessions, bool):
            raise ValidationError(
                f"receivers[{index}].sessions must be an integer"
            )
        if sessions < 1:
            raise ValidationError(
                f"receivers[{index}].sessions must be >= 1, got {sessions}"
            )
        receivers.append(
            GroupReceiver(class_id=class_id, device=device, sessions=sessions)
        )
    return tuple(receivers)


def profile_to_dict(profile: Any) -> Dict[str, Any]:
    """Serialize any of the six profile types to a tagged dictionary."""
    if isinstance(profile, UserProfile):
        return _user_to_dict(profile)
    if isinstance(profile, ContentProfile):
        return _content_to_dict(profile)
    if isinstance(profile, ContextProfile):
        return _context_to_dict(profile)
    if isinstance(profile, DeviceProfile):
        return _device_to_dict(profile)
    if isinstance(profile, NetworkProfile):
        return _network_to_dict(profile)
    if isinstance(profile, IntermediaryProfile):
        return _intermediary_to_dict(profile)
    raise ValidationError(f"not a profile object: {type(profile).__name__}")


def profile_from_dict(
    data: Mapping[str, Any],
    registry: FormatRegistry = None,
) -> Any:
    """Deserialize a tagged dictionary back into a profile object.

    Content profiles reference media formats by name, so deserializing one
    requires the scenario's :class:`FormatRegistry`.
    """
    if not isinstance(data, Mapping):
        raise ValidationError(
            f"profile document must be a JSON object, got {type(data).__name__}"
        )
    tag = data.get("profile")
    if tag == "user":
        return _user_from_dict(data)
    if tag == "content":
        if registry is None:
            raise ValidationError(
                "deserializing a content profile requires a FormatRegistry"
            )
        return _content_from_dict(data, registry)
    if tag == "context":
        return _context_from_dict(data)
    if tag == "device":
        return _device_from_dict(data)
    if tag == "network":
        return _network_from_dict(data)
    if tag == "intermediary":
        return _intermediary_from_dict(data)
    raise ValidationError(f"unknown profile tag: {tag!r}")
