"""The context profile: the user's dynamic situation.

Section 3: "A context profile would include any dynamic information that is
part of the context or current status of the user ... physical (e.g.
location, weather, temperature), social (e.g. sitting for dinner), or
organizational information (e.g. acting senior manager)", mirroring the
MPEG-21 usage-environment tools (location, time, audio and illumination
characteristics).

Besides carrying the raw facts, the profile derives two algorithm-facing
effects, the way a real adaptation engine would:

- **parameter caps** — e.g. a "driving" activity caps video frame rate to
  zero (eyes on the road), a dark environment caps useful color depth;
- **preference weights** — e.g. a noisy environment devalues audio quality,
  which a :class:`~repro.core.satisfaction.WeightedHarmonicCombiner` can
  consume.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.parameters import AUDIO_QUALITY, COLOR_DEPTH, FRAME_RATE
from repro.errors import ValidationError

__all__ = ["ContextProfile"]


class ContextProfile:
    """Dynamic physical / social / organizational context of the user."""

    #: Activities with built-in adaptation consequences.
    KNOWN_ACTIVITIES = ("idle", "walking", "driving", "meeting", "dinner")

    def __init__(
        self,
        location: str = "",
        activity: str = "idle",
        noise_level_db: float = 40.0,
        illumination_lux: float = 300.0,
        local_time_hour: Optional[int] = None,
        organizational_role: str = "",
        attributes: Optional[Mapping[str, str]] = None,
    ) -> None:
        if activity not in self.KNOWN_ACTIVITIES:
            raise ValidationError(
                f"unknown activity {activity!r}; expected one of "
                f"{self.KNOWN_ACTIVITIES}"
            )
        if noise_level_db < 0:
            raise ValidationError("noise level must be >= 0 dB")
        if illumination_lux < 0:
            raise ValidationError("illumination must be >= 0 lux")
        if local_time_hour is not None and not 0 <= local_time_hour <= 23:
            raise ValidationError("local_time_hour must lie in 0..23")
        self.location = location
        self.activity = activity
        self.noise_level_db = noise_level_db
        self.illumination_lux = illumination_lux
        self.local_time_hour = local_time_hour
        self.organizational_role = organizational_role
        self.attributes: Dict[str, str] = dict(attributes or {})

    # ------------------------------------------------------------------
    # Identity (plan-cache fingerprints)
    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple:
        """A stable, hashable tuple covering every field of the profile."""
        return (
            self.location,
            self.activity,
            self.noise_level_db,
            self.illumination_lux,
            self.local_time_hour,
            self.organizational_role,
            tuple(sorted(self.attributes.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextProfile):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    # ------------------------------------------------------------------
    # Algorithm-facing derivations
    # ------------------------------------------------------------------
    def parameter_caps(self) -> Dict[str, float]:
        """Hard parameter limits implied by the context.

        - driving: no video at all (frame rate capped to 0);
        - meeting / dinner: audio muted (audio quality capped to 0);
        - very dark environments (< 5 lux): color depth capped to 8 bits —
          deep color is imperceptible on a dim screen.
        """
        caps: Dict[str, float] = {}
        if self.activity == "driving":
            caps[FRAME_RATE] = 0.0
        if self.activity in ("meeting", "dinner"):
            caps[AUDIO_QUALITY] = 0.0
        if self.illumination_lux < 5.0:
            caps[COLOR_DEPTH] = 8.0
        return caps

    def preference_weights(self) -> Dict[str, float]:
        """Relative per-parameter weights implied by the context.

        Returned weights default to 1.0 and shrink for senses the context
        impairs: loud environments devalue audio, dim ones devalue video
        detail.  Consumers feed these into a weighted combiner; an empty
        adjustment set means equal weights (plain Equation 1).
        """
        weights: Dict[str, float] = {}
        if self.noise_level_db > 75.0:
            weights[AUDIO_QUALITY] = 0.25
        elif self.noise_level_db > 60.0:
            weights[AUDIO_QUALITY] = 0.5
        if self.illumination_lux < 50.0:
            weights[COLOR_DEPTH] = 0.5
        return weights

    def is_business_hours(self) -> bool:
        """Whether the local time falls in 9..17 (unknown time: False)."""
        if self.local_time_hour is None:
            return False
        return 9 <= self.local_time_hour <= 17

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContextProfile(activity={self.activity!r}, "
            f"location={self.location!r}, noise={self.noise_level_db}dB)"
        )
