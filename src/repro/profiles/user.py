"""The user profile: preferences, policies, and budget.

Section 3: "The user's profile captures the personal properties and
preferences of the user, such as the preferred audio and video
receiving/sending qualities (frame rate, resolution, audio quality...)",
plus "the user's policies for application adaptations, such as the
preference of the user to drop the audio quality of a sport-clip before
degrading the video quality when resources are limited".

Concretely a :class:`UserProfile` couples:

- a :class:`~repro.core.satisfaction.CombinedSatisfaction` — one
  satisfaction function per parameter the user cares about, plus the
  combination function (Equation 1 by default);
- an ordered list of :class:`AdaptationPolicy` entries — which parameters
  to sacrifice first when resources run out (consumed by the configuration
  optimizer's reduction order);
- the monetary ``budget`` the user is willing to pay (Figure 4's
  ``user_budget``);
- optional per-peer overrides (the paper's "CD audio when talking to a
  client, telephony quality with a colleague" example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.satisfaction import CombinedSatisfaction, Combiner, HarmonicCombiner, SatisfactionFunction
from repro.errors import ValidationError

__all__ = ["AdaptationPolicy", "UserProfile"]


@dataclass(frozen=True)
class AdaptationPolicy:
    """One entry of the user's degrade-first ordering.

    ``parameter`` names a QoS parameter; ``priority`` orders sacrifices —
    lower priority is degraded *first* when bandwidth runs out.  The
    paper's example ("drop the audio quality ... before degrading the video
    quality") becomes ``AdaptationPolicy("audio_quality", priority=0)`` plus
    ``AdaptationPolicy("frame_rate", priority=1)``.
    """

    parameter: str
    priority: int

    def __post_init__(self) -> None:
        if not self.parameter:
            raise ValidationError("policy parameter name must be non-empty")


class UserProfile:
    """Preferences and constraints of one user."""

    def __init__(
        self,
        user_id: str,
        satisfaction_functions: Mapping[str, SatisfactionFunction],
        combiner: Optional[Combiner] = None,
        budget: float = float("inf"),
        policies: Sequence[AdaptationPolicy] = (),
        peer_overrides: Optional[Mapping[str, Mapping[str, SatisfactionFunction]]] = None,
        display_name: str = "",
        max_delay_ms: float = float("inf"),
    ) -> None:
        if not user_id:
            raise ValidationError("user_id must be non-empty")
        if budget < 0:
            raise ValidationError("budget must be >= 0")
        if max_delay_ms <= 0:
            raise ValidationError("max_delay_ms must be positive")
        if not satisfaction_functions:
            raise ValidationError("a user profile needs at least one preference")
        self.user_id = user_id
        self.display_name = display_name or user_id
        self.budget = float(budget)
        #: End-to-end propagation-delay bound for interactive sessions
        #: (infinity = delay-insensitive, the default).
        self.max_delay_ms = float(max_delay_ms)
        self._combiner = combiner if combiner is not None else HarmonicCombiner()
        self._functions: Dict[str, SatisfactionFunction] = dict(satisfaction_functions)
        self._policies = tuple(sorted(policies, key=lambda p: p.priority))
        seen = set()
        for policy in self._policies:
            if policy.parameter in seen:
                raise ValidationError(
                    f"duplicate adaptation policy for {policy.parameter!r}"
                )
            seen.add(policy.parameter)
        self._peer_overrides: Dict[str, Dict[str, SatisfactionFunction]] = {
            peer: dict(functions)
            for peer, functions in (peer_overrides or {}).items()
        }

    # ------------------------------------------------------------------
    # Satisfaction
    # ------------------------------------------------------------------
    @property
    def combiner(self) -> Combiner:
        return self._combiner

    def satisfaction(self, peer: Optional[str] = None) -> CombinedSatisfaction:
        """The satisfaction model, optionally specialized for a peer.

        Peer overrides replace or add per-parameter functions on top of the
        base preferences (the paper's per-person quality preferences).
        """
        functions = dict(self._functions)
        if peer is not None and peer in self._peer_overrides:
            functions.update(self._peer_overrides[peer])
        return CombinedSatisfaction(functions=functions, combiner=self._combiner)

    def preference_parameters(self) -> List[str]:
        """Names of the parameters the user has preferences for."""
        return list(self._functions)

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    @property
    def policies(self) -> Sequence[AdaptationPolicy]:
        return self._policies

    # ------------------------------------------------------------------
    # Identity (plan-cache fingerprints)
    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple:
        """A stable, hashable tuple covering every preference-bearing field.

        Two profiles with equal keys produce identical plans in identical
        scenarios; any mutated field changes the key.
        """
        return (
            self.user_id,
            self.display_name,
            self.budget,
            self.max_delay_ms,
            self._combiner.cache_key(),
            tuple(sorted(
                (name, fn.cache_key()) for name, fn in self._functions.items()
            )),
            self._policies,
            tuple(sorted(
                (
                    peer,
                    tuple(sorted(
                        (name, fn.cache_key()) for name, fn in functions.items()
                    )),
                )
                for peer, functions in self._peer_overrides.items()
            )),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UserProfile):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def degrade_order(self, parameters: Sequence[str]) -> List[str]:
        """Order ``parameters`` by sacrifice preference, first-to-degrade
        first.

        Parameters with explicit policies come first (by priority); the
        rest keep their given order after them.  The configuration
        optimizer walks this list when bandwidth forces reductions.
        """
        prioritized = {p.parameter: p.priority for p in self._policies}
        with_policy = [p for p in parameters if p in prioritized]
        without_policy = [p for p in parameters if p not in prioritized]
        with_policy.sort(key=lambda name: prioritized[name])
        return with_policy + without_policy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UserProfile({self.user_id!r}, "
            f"parameters={list(self._functions)}, budget={self.budget})"
        )
