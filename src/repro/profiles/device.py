"""The device profile: capabilities of the rendering device.

Section 3: "Information about the rendering device may include the hardware
characteristics of the device, such as the device type, processor speed,
processor load, screen resolution, color depth, available memory, number of
speakers, the display size, and the input and output capabilities", plus the
software side, notably the "audio and video codecs supported by the device".
This is the UAProf / MPEG-21 stand-in.

Two pieces feed the algorithms (Section 4.2): the supported *decoders*
become "the input links of the receiver", and the hardware limits become the
receiver's rendering caps (a 15 fps display cannot benefit from a 30 fps
stream).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.parameters import AUDIO_QUALITY, COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.errors import ValidationError
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = ["DeviceProfile"]


class DeviceProfile:
    """Hardware and software capabilities of one client device."""

    def __init__(
        self,
        device_id: str,
        decoders: Sequence[str],
        max_resolution: Optional[float] = None,
        max_color_depth: Optional[float] = None,
        max_frame_rate: Optional[float] = None,
        max_audio_kbps: Optional[float] = None,
        cpu_mips: float = 500.0,
        memory_mb: float = 256.0,
        vendor: str = "",
        model: str = "",
        attributes: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not device_id:
            raise ValidationError("device_id must be non-empty")
        if not decoders:
            raise ValidationError(
                f"device {device_id!r} needs at least one decoder"
            )
        if len(set(decoders)) != len(list(decoders)):
            raise ValidationError(f"device {device_id!r} lists a decoder twice")
        if cpu_mips < 0 or memory_mb < 0:
            raise ValidationError(f"device {device_id!r}: resources must be >= 0")
        for label, value in (
            ("max_resolution", max_resolution),
            ("max_color_depth", max_color_depth),
            ("max_frame_rate", max_frame_rate),
            ("max_audio_kbps", max_audio_kbps),
        ):
            if value is not None and value < 0:
                raise ValidationError(f"device {device_id!r}: {label} must be >= 0")
        self.device_id = device_id
        self.decoders: List[str] = list(decoders)
        self.max_resolution = max_resolution
        self.max_color_depth = max_color_depth
        self.max_frame_rate = max_frame_rate
        self.max_audio_kbps = max_audio_kbps
        self.cpu_mips = cpu_mips
        self.memory_mb = memory_mb
        self.vendor = vendor
        self.model = model
        self.attributes: Dict[str, str] = dict(attributes or {})

    # ------------------------------------------------------------------
    # Identity (plan-cache fingerprints)
    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple:
        """A stable, hashable tuple covering every field of the profile."""
        return (
            self.device_id,
            tuple(self.decoders),
            self.max_resolution,
            self.max_color_depth,
            self.max_frame_rate,
            self.max_audio_kbps,
            self.cpu_mips,
            self.memory_mb,
            self.vendor,
            self.model,
            tuple(sorted(self.attributes.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeviceProfile):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def can_decode(self, format_name: str) -> bool:
        return format_name in self.decoders

    def rendering_caps(self) -> Dict[str, float]:
        """Per-parameter upper bounds the hardware imposes.

        Only limits the profile actually states are included, so an
        unspecified capability never constrains the optimizer.
        """
        caps: Dict[str, float] = {}
        if self.max_frame_rate is not None:
            caps[FRAME_RATE] = self.max_frame_rate
        if self.max_resolution is not None:
            caps[RESOLUTION] = self.max_resolution
        if self.max_color_depth is not None:
            caps[COLOR_DEPTH] = self.max_color_depth
        if self.max_audio_kbps is not None:
            caps[AUDIO_QUALITY] = self.max_audio_kbps
        return caps

    def receiver_descriptor(self, service_id: str = "receiver") -> ServiceDescriptor:
        """The receiver pseudo-vertex of Section 4.2.

        "The input links of the receiver are exactly the possible decoders
        available at the receiver's device."
        """
        return ServiceDescriptor(
            service_id=service_id,
            input_formats=tuple(self.decoders),
            output_caps=self.rendering_caps(),
            kind=ServiceKind.RECEIVER,
            description=f"rendering device {self.device_id!r}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceProfile({self.device_id!r}, decoders={self.decoders})"
