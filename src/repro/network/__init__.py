"""Network substrate: topology, bandwidth, and service placement.

The paper's algorithm consumes one network primitive —
``Bandwidth_AvailableBetween(Ti, Tprev)`` (Equation 2) — plus the knowledge
of where each service runs ("connected trans-coding services that run on the
same intermediate server have an unlimited amount of bandwidth between
them", Section 4.3).  This package provides both, built on a small
discrete-event-free topology simulator:

- :class:`~repro.network.topology.NetworkTopology` — nodes and links with
  bandwidth / delay / loss, plus routing queries (widest path, fewest hops);
- :class:`~repro.network.bandwidth.BandwidthEstimator` and fluctuation
  models — time-varying available bandwidth for the extension experiments;
- :class:`~repro.network.placement.ServicePlacement` — the service→node
  mapping with resource-feasibility checks.
"""

from repro.network.topology import Link, NetworkNode, NetworkTopology
from repro.network.bandwidth import (
    BandwidthEstimator,
    ConstantBandwidth,
    RandomWalkBandwidth,
    SinusoidalBandwidth,
)
from repro.network.placement import ServicePlacement

__all__ = [
    "NetworkNode",
    "Link",
    "NetworkTopology",
    "BandwidthEstimator",
    "ConstantBandwidth",
    "SinusoidalBandwidth",
    "RandomWalkBandwidth",
    "ServicePlacement",
]
