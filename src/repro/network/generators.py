"""Topology generators: standard network shapes for experiments.

The synthetic workload generator builds one random shape; the ablation and
extension experiments also want *structured* topologies whose properties
are known in advance:

- :func:`star_topology` — every proxy hangs off one core (the classic CDN
  picture; all inter-proxy traffic crosses the core);
- :func:`chain_topology` — a linear chain (maximizes hop counts; the worst
  case for startup latency);
- :func:`tree_topology` — a complete k-ary tree (hierarchical caching);
- :func:`dumbbell_topology` — two clusters joined by one bottleneck link
  (the canonical congestion scenario);
- :func:`random_geometric_topology` — nodes in the unit square connected
  within a radius, a Waxman-style internet stand-in (seeded).

All generators take bandwidth/delay defaults and return plain
:class:`~repro.network.topology.NetworkTopology` objects.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import List, Optional

from repro.errors import ValidationError
from repro.network.topology import NetworkTopology

__all__ = [
    "star_topology",
    "chain_topology",
    "tree_topology",
    "dumbbell_topology",
    "random_geometric_topology",
]


def star_topology(
    leaves: int,
    bandwidth_bps: float = 10e6,
    delay_ms: float = 5.0,
    core_id: str = "core",
) -> NetworkTopology:
    """One core node with ``leaves`` spokes."""
    if leaves < 1:
        raise ValidationError("a star needs at least one leaf")
    topology = NetworkTopology()
    topology.node(core_id)
    for index in range(leaves):
        leaf = f"leaf{index}"
        topology.node(leaf)
        topology.link(core_id, leaf, bandwidth_bps, delay_ms=delay_ms)
    return topology


def chain_topology(
    length: int,
    bandwidth_bps: float = 10e6,
    delay_ms: float = 5.0,
) -> NetworkTopology:
    """A linear chain ``hop0 -- hop1 -- ... -- hop{length-1}``."""
    if length < 2:
        raise ValidationError("a chain needs at least two nodes")
    topology = NetworkTopology()
    for index in range(length):
        topology.node(f"hop{index}")
    for index in range(length - 1):
        topology.link(
            f"hop{index}", f"hop{index + 1}", bandwidth_bps, delay_ms=delay_ms
        )
    return topology


def tree_topology(
    depth: int,
    fanout: int = 2,
    bandwidth_bps: float = 10e6,
    delay_ms: float = 5.0,
) -> NetworkTopology:
    """A complete ``fanout``-ary tree of the given depth (root = depth 0)."""
    if depth < 1:
        raise ValidationError("a tree needs depth >= 1")
    if fanout < 1:
        raise ValidationError("fanout must be >= 1")
    topology = NetworkTopology()
    topology.node("n0")
    frontier = ["n0"]
    counter = itertools.count(1)
    for _ in range(depth):
        next_frontier: List[str] = []
        for parent in frontier:
            for _ in range(fanout):
                child = f"n{next(counter)}"
                topology.node(child)
                topology.link(parent, child, bandwidth_bps, delay_ms=delay_ms)
                next_frontier.append(child)
        frontier = next_frontier
    return topology


def dumbbell_topology(
    side_size: int,
    bottleneck_bps: float = 1e6,
    edge_bps: float = 10e6,
    delay_ms: float = 5.0,
) -> NetworkTopology:
    """Two stars joined by one narrow link (``left-core -- right-core``).

    Every left-to-right path crosses the bottleneck, making the widest-path
    query's answer obvious — useful as a known-answer fixture.
    """
    if side_size < 1:
        raise ValidationError("each side needs at least one node")
    topology = NetworkTopology()
    topology.node("left-core")
    topology.node("right-core")
    topology.link("left-core", "right-core", bottleneck_bps, delay_ms=delay_ms)
    for index in range(side_size):
        left = f"left{index}"
        right = f"right{index}"
        topology.node(left)
        topology.node(right)
        topology.link("left-core", left, edge_bps, delay_ms=delay_ms)
        topology.link("right-core", right, edge_bps, delay_ms=delay_ms)
    return topology


def random_geometric_topology(
    nodes: int,
    radius: float = 0.45,
    seed: int = 0,
    min_bandwidth_bps: float = 2e6,
    max_bandwidth_bps: float = 20e6,
) -> NetworkTopology:
    """Seeded random geometric graph in the unit square.

    Nodes connect when within ``radius``; link delay grows with distance
    and bandwidth is uniform-random.  Isolated components are stitched to
    their nearest neighbor so the result is always connected.
    """
    if nodes < 2:
        raise ValidationError("need at least two nodes")
    if not 0.0 < radius <= math.sqrt(2.0):
        raise ValidationError("radius must lie in (0, sqrt(2)]")
    rng = random.Random(seed)
    topology = NetworkTopology()
    positions = {}
    for index in range(nodes):
        node_id = f"g{index}"
        topology.node(node_id)
        positions[node_id] = (rng.random(), rng.random())

    def distance(a: str, b: str) -> float:
        (ax, ay), (bx, by) = positions[a], positions[b]
        return math.hypot(ax - bx, ay - by)

    def connect(a: str, b: str) -> None:
        topology.link(
            a,
            b,
            bandwidth_bps=rng.uniform(min_bandwidth_bps, max_bandwidth_bps),
            delay_ms=1.0 + 50.0 * distance(a, b),
        )

    ids = list(positions)
    for a, b in itertools.combinations(ids, 2):
        if distance(a, b) <= radius:
            connect(a, b)

    # Stitch disconnected components to the nearest outside node.
    def component_of(start: str) -> set:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in topology.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    main = component_of(ids[0])
    while len(main) < nodes:
        outside = [n for n in ids if n not in main]
        best_pair: Optional[tuple] = None
        best_distance = math.inf
        for a in outside:
            for b in main:
                d = distance(a, b)
                if d < best_distance:
                    best_distance = d
                    best_pair = (a, b)
        assert best_pair is not None
        connect(*best_pair)
        main = component_of(ids[0])
    return topology
