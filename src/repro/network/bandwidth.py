"""Time-varying available bandwidth.

Section 3's network profile motivates "dynamically adapt[ing] the multimedia
content to the fluctuating network resources".  The selection algorithm
itself works on a snapshot, but the runtime pipeline and the extension
experiments need bandwidth that changes over time.  A *fluctuation model*
maps ``(link, time)`` to a multiplicative factor in ``(0, 1]``; the
:class:`BandwidthEstimator` applies it on top of a topology and answers the
same queries the static topology does.

All randomness is seeded — rerunning a scenario reproduces the same series.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.network.topology import Link, NetworkTopology

__all__ = [
    "FluctuationModel",
    "ConstantBandwidth",
    "SinusoidalBandwidth",
    "RandomWalkBandwidth",
    "BandwidthEstimator",
]


class FluctuationModel:
    """Maps (link, time) to a bandwidth factor in ``(0, 1]``."""

    def factor(self, link: Link, time_s: float) -> float:
        raise NotImplementedError


class ConstantBandwidth(FluctuationModel):
    """No fluctuation: the published bandwidth is always available."""

    def factor(self, link: Link, time_s: float) -> float:
        return 1.0


class SinusoidalBandwidth(FluctuationModel):
    """Smooth periodic fluctuation (diurnal-load stand-in).

    The factor oscillates in ``[1 - amplitude, 1]``; each link gets a
    deterministic phase derived from its endpoints so links do not move in
    lockstep.
    """

    def __init__(self, amplitude: float = 0.3, period_s: float = 60.0) -> None:
        if not 0.0 <= amplitude < 1.0:
            raise ValidationError("amplitude must lie in [0, 1)")
        if period_s <= 0:
            raise ValidationError("period must be positive")
        self._amplitude = amplitude
        self._period = period_s

    def factor(self, link: Link, time_s: float) -> float:
        # crc32, not hash(): str hashing is salted per process
        # (PYTHONHASHSEED), which would break cross-run determinism.
        digest = zlib.crc32(f"{link.a}|{link.b}".encode("utf-8"))
        phase = (digest % 997) / 997.0 * 2.0 * math.pi
        wave = 0.5 * (1.0 + math.sin(2.0 * math.pi * time_s / self._period + phase))
        return 1.0 - self._amplitude * wave


class RandomWalkBandwidth(FluctuationModel):
    """Seeded bounded random walk per link, sampled on a fixed tick.

    Models bursty cross-traffic: each tick the factor moves by a uniform
    step and is reflected into ``[floor, 1]``.
    """

    def __init__(
        self,
        seed: int = 0,
        step: float = 0.05,
        floor: float = 0.2,
        tick_s: float = 1.0,
    ) -> None:
        if not 0.0 < floor <= 1.0:
            raise ValidationError("floor must lie in (0, 1]")
        if step < 0:
            raise ValidationError("step must be >= 0")
        if tick_s <= 0:
            raise ValidationError("tick must be positive")
        self._seed = seed
        self._step = step
        self._floor = floor
        self._tick = tick_s
        self._cache: Dict[Tuple[Tuple[str, str], int], float] = {}

    def factor(self, link: Link, time_s: float) -> float:
        tick = int(time_s / self._tick)
        key = (link.endpoints(), tick)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        # Walk forward from the most recent cached tick (or from 1.0 at t=0)
        # so factors are consistent regardless of query order.
        start_tick = 0
        factor = 1.0
        for t in range(tick, -1, -1):
            hit = self._cache.get((link.endpoints(), t))
            if hit is not None:
                start_tick, factor = t, hit
                break
        for t in range(start_tick + 1, tick + 1):
            # Each tick's step is independently seeded so the walk is
            # identical no matter which tick gets queried first.
            rng = random.Random(f"{self._seed}:{link.a}:{link.b}:{t}")
            factor += rng.uniform(-self._step, self._step)
            # Reflect into [floor, 1].
            if factor > 1.0:
                factor = 2.0 - factor
            if factor < self._floor:
                factor = 2.0 * self._floor - factor
            factor = min(1.0, max(self._floor, factor))
            self._cache[(link.endpoints(), t)] = factor
        self._cache[key] = factor
        return factor


class BandwidthEstimator:
    """Topology + fluctuation model = time-dependent bandwidth queries.

    With the default :class:`ConstantBandwidth` model this reproduces the
    static topology's numbers exactly, so the selector can be handed an
    estimator unconditionally.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        model: Optional[FluctuationModel] = None,
    ) -> None:
        self._topology = topology
        self._model = model if model is not None else ConstantBandwidth()

    @property
    def topology(self) -> NetworkTopology:
        return self._topology

    def link_bandwidth(self, a: str, b: str, time_s: float = 0.0) -> float:
        """Instantaneous available bandwidth of one link."""
        link = self._topology.get_link(a, b)
        return link.bandwidth_bps * self._model.factor(link, time_s)

    def available_bandwidth(self, source: str, target: str, time_s: float = 0.0) -> float:
        """Instantaneous bottleneck bandwidth between two hosts.

        Uses the static widest path (route pinning: routes are chosen on
        published bandwidth, as a real overlay would) and applies the
        fluctuation factor per link along it.
        """
        path = self._topology.widest_path(source, target)
        if path is None:
            return 0.0
        if len(path) < 2:
            return math.inf
        return min(
            self.link_bandwidth(x, y, time_s) for x, y in zip(path, path[1:])
        )

    def series(
        self,
        source: str,
        target: str,
        duration_s: float,
        interval_s: float = 1.0,
    ):
        """Sampled ``(time, bandwidth)`` pairs over a time window."""
        if interval_s <= 0:
            raise ValidationError("interval must be positive")
        samples = []
        t = 0.0
        while t <= duration_s:
            samples.append((t, self.available_bandwidth(source, target, t)))
            t += interval_s
        return samples
