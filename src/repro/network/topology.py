"""Network topology: nodes, links, and the routing queries the algorithms use.

The topology is an undirected multigraph-free graph (at most one link per
node pair) whose links carry *available bandwidth* (bits/second), one-way
propagation delay (milliseconds), a loss rate, and an optional per-use
transmission cost.  Three queries matter to the rest of the system:

- :meth:`NetworkTopology.available_bandwidth` — the bandwidth available
  between the hosts of two services, defined as the *bottleneck of the
  widest path* between their nodes.  Services on the same node see
  unlimited bandwidth (Section 4.3).
- :meth:`NetworkTopology.widest_path` — the path realizing that bottleneck
  (a max-bottleneck Dijkstra).
- :meth:`NetworkTopology.shortest_path` — fewest-hops / least-delay routing
  for the baselines and the runtime pipeline's latency model.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import UnknownNodeError, ValidationError

__all__ = ["NetworkNode", "Link", "NetworkTopology"]

#: Bandwidth reported between two services hosted on the same node.
UNLIMITED_BANDWIDTH = math.inf


@dataclass(frozen=True)
class NetworkNode:
    """One host in the topology (content server, proxy, or client device).

    ``cpu_mips`` and ``memory_mb`` bound which services placement may put
    here (Section 3: the intermediary profile includes "the available
    resources at the intermediary (such as CPU cycles, memory)").
    """

    node_id: str
    cpu_mips: float = 1000.0
    memory_mb: float = 1024.0
    attributes: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValidationError("node_id must be non-empty")
        if self.cpu_mips < 0 or self.memory_mb < 0:
            raise ValidationError(f"{self.node_id}: resources must be >= 0")

    def __str__(self) -> str:
        return self.node_id


@dataclass(frozen=True)
class Link:
    """An undirected link between two nodes.

    ``bandwidth_bps`` is the *available* bandwidth the QoS algorithm may
    budget against (the paper assumes this has been measured and published
    in the network profile).  ``cost`` is the monetary transmission cost of
    sending one stream over the link, which feeds the accumulated-cost
    bookkeeping of the selection algorithm (Figure 4, Step 6).
    """

    a: str
    b: str
    bandwidth_bps: float
    delay_ms: float = 1.0
    loss_rate: float = 0.0
    cost: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValidationError(f"self-link at node {self.a!r}")
        if self.bandwidth_bps < 0:
            raise ValidationError("bandwidth must be >= 0")
        if self.delay_ms < 0:
            raise ValidationError("delay must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValidationError("loss rate must lie in [0, 1)")
        if self.cost < 0:
            raise ValidationError("link cost must be >= 0")

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, node_id: str) -> str:
        """The endpoint that is not ``node_id``."""
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise UnknownNodeError(node_id)


def _canonical(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class NetworkTopology:
    """Mutable collection of nodes and links with routing queries."""

    def __init__(self) -> None:
        self._nodes: Dict[str, NetworkNode] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped on node/link additions).

        Plan fingerprints embed this counter so a cached plan can never
        outlive the topology it was computed on.
        """
        return self._generation

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NetworkNode) -> NetworkNode:
        existing = self._nodes.get(node.node_id)
        if existing is not None and existing != node:
            raise ValidationError(f"node {node.node_id!r} already exists")
        self._nodes[node.node_id] = node
        self._adjacency.setdefault(node.node_id, [])
        self._generation += 1
        return node

    def node(
        self,
        node_id: str,
        cpu_mips: float = 1000.0,
        memory_mb: float = 1024.0,
    ) -> NetworkNode:
        """Create-and-add convenience wrapper around :meth:`add_node`."""
        return self.add_node(NetworkNode(node_id, cpu_mips, memory_mb))

    def add_link(self, link: Link) -> Link:
        for endpoint in link.endpoints():
            if endpoint not in self._nodes:
                raise UnknownNodeError(endpoint)
        key = _canonical(link.a, link.b)
        if key in self._links:
            raise ValidationError(f"link {key} already exists")
        self._links[key] = link
        self._adjacency[link.a].append(link.b)
        self._adjacency[link.b].append(link.a)
        self._generation += 1
        return link

    def link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        delay_ms: float = 1.0,
        loss_rate: float = 0.0,
        cost: float = 0.0,
    ) -> Link:
        """Create-and-add convenience wrapper around :meth:`add_link`."""
        return self.add_link(Link(a, b, bandwidth_bps, delay_ms, loss_rate, cost))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_node(self, node_id: str) -> NetworkNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def get_link(self, a: str, b: str) -> Link:
        try:
            return self._links[_canonical(a, b)]
        except KeyError:
            raise UnknownNodeError(f"{a}--{b}") from None

    def has_link(self, a: str, b: str) -> bool:
        return _canonical(a, b) in self._links

    def nodes(self) -> List[NetworkNode]:
        return list(self._nodes.values())

    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def links(self) -> List[Link]:
        return list(self._links.values())

    def neighbors(self, node_id: str) -> List[str]:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return list(self._adjacency[node_id])

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Routing queries
    # ------------------------------------------------------------------
    def widest_path(self, source: str, target: str) -> Optional[List[str]]:
        """The max-bottleneck path from ``source`` to ``target``.

        Returns the node sequence, or ``None`` when the nodes are
        disconnected.  ``source == target`` yields the trivial path.
        """
        if source not in self._nodes:
            raise UnknownNodeError(source)
        if target not in self._nodes:
            raise UnknownNodeError(target)
        if source == target:
            return [source]
        # Max-bottleneck Dijkstra: widen the best-known bottleneck per node.
        best: Dict[str, float] = {source: math.inf}
        parent: Dict[str, str] = {}
        # heapq is a min-heap, so push negated bottlenecks.
        heap: List[Tuple[float, str]] = [(-math.inf, source)]
        visited = set()
        while heap:
            neg_width, current = heapq.heappop(heap)
            if current in visited:
                continue
            visited.add(current)
            if current == target:
                break
            width = -neg_width
            for neighbor in self._adjacency[current]:
                if neighbor in visited:
                    continue
                link = self.get_link(current, neighbor)
                candidate = min(width, link.bandwidth_bps)
                if candidate > best.get(neighbor, -1.0):
                    best[neighbor] = candidate
                    parent[neighbor] = current
                    heapq.heappush(heap, (-candidate, neighbor))
        if target not in best:
            return None
        return self._unwind(parent, source, target)

    def available_bandwidth(self, source: str, target: str) -> float:
        """``Bandwidth_AvailableBetween`` (Equation 2's right-hand side).

        The bottleneck bandwidth of the widest path between the two nodes;
        infinite when they are the same node; 0.0 when disconnected.
        """
        path = self.widest_path(source, target)
        if path is None:
            return 0.0
        return self.path_bottleneck(path)

    def path_bottleneck(self, path: List[str]) -> float:
        """Minimum link bandwidth along a node sequence."""
        if len(path) < 2:
            return UNLIMITED_BANDWIDTH
        return min(
            self.get_link(a, b).bandwidth_bps for a, b in zip(path, path[1:])
        )

    def shortest_path(
        self,
        source: str,
        target: str,
        weight: str = "hops",
    ) -> Optional[List[str]]:
        """Least-cost path under ``weight`` ∈ {"hops", "delay", "cost"}."""
        if source not in self._nodes:
            raise UnknownNodeError(source)
        if target not in self._nodes:
            raise UnknownNodeError(target)
        if weight not in ("hops", "delay", "cost"):
            raise ValidationError(f"unknown weight kind: {weight!r}")
        if source == target:
            return [source]
        distance: Dict[str, float] = {source: 0.0}
        parent: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        visited = set()
        while heap:
            dist, current = heapq.heappop(heap)
            if current in visited:
                continue
            visited.add(current)
            if current == target:
                break
            for neighbor in self._adjacency[current]:
                if neighbor in visited:
                    continue
                link = self.get_link(current, neighbor)
                if weight == "hops":
                    step = 1.0
                elif weight == "delay":
                    step = link.delay_ms
                else:
                    step = link.cost
                candidate = dist + step
                if candidate < distance.get(neighbor, math.inf):
                    distance[neighbor] = candidate
                    parent[neighbor] = current
                    heapq.heappush(heap, (candidate, neighbor))
        if target not in distance:
            return None
        return self._unwind(parent, source, target)

    def path_delay_ms(self, path: List[str]) -> float:
        """Total one-way propagation delay along a node sequence."""
        return sum(self.get_link(a, b).delay_ms for a, b in zip(path, path[1:]))

    def path_cost(self, path: List[str]) -> float:
        """Total transmission cost along a node sequence."""
        return sum(self.get_link(a, b).cost for a, b in zip(path, path[1:]))

    def path_loss_rate(self, path: List[str]) -> float:
        """End-to-end loss rate along a node sequence (independent links)."""
        survival = 1.0
        for a, b in zip(path, path[1:]):
            survival *= 1.0 - self.get_link(a, b).loss_rate
        return 1.0 - survival

    @staticmethod
    def _unwind(parent: Mapping[str, str], source: str, target: str) -> List[str]:
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkTopology(nodes={len(self._nodes)}, links={len(self._links)})"
