"""Service placement: which network node hosts which service.

The intermediary profile (Section 3) couples services to the hosts that run
them; Section 4.3 makes the host assignment matter to the algorithm, since
the bandwidth between two services is the bandwidth between their hosts
(and unlimited when they share a host).  :class:`ServicePlacement` is that
mapping, with resource-feasibility checks against node capacities.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import PlacementError, UnknownServiceError
from repro.network.topology import NetworkTopology
from repro.services.descriptor import ServiceDescriptor

__all__ = ["ServicePlacement"]


class ServicePlacement:
    """A mutable mapping of service ids to node ids."""

    def __init__(
        self,
        topology: NetworkTopology,
        assignments: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._topology = topology
        self._node_of: Dict[str, str] = {}
        self._generation = 0
        if assignments:
            for service_id, node_id in assignments.items():
                self.place(service_id, node_id)

    @property
    def topology(self) -> NetworkTopology:
        return self._topology

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped on place / unplace)."""
        return self._generation

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def place(self, service_id: str, node_id: str) -> None:
        """Assign a service to a node (re-placing is allowed)."""
        if node_id not in self._topology:
            raise PlacementError(
                f"cannot place {service_id!r}: node {node_id!r} not in topology"
            )
        self._node_of[service_id] = node_id
        self._generation += 1

    def unplace(self, service_id: str) -> None:
        if service_id not in self._node_of:
            raise UnknownServiceError(service_id)
        del self._node_of[service_id]
        self._generation += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_of(self, service_id: str) -> str:
        """The node hosting ``service_id``; raises when unplaced."""
        try:
            return self._node_of[service_id]
        except KeyError:
            raise PlacementError(f"service {service_id!r} is not placed") from None

    def is_placed(self, service_id: str) -> bool:
        return service_id in self._node_of

    def services_at(self, node_id: str) -> List[str]:
        """All service ids hosted on ``node_id``."""
        return [s for s, n in self._node_of.items() if n == node_id]

    def co_located(self, service_a: str, service_b: str) -> bool:
        """Whether two services share a host (unlimited bandwidth)."""
        return self.node_of(service_a) == self.node_of(service_b)

    def bandwidth_between(self, service_a: str, service_b: str) -> float:
        """``Bandwidth_AvailableBetween`` lifted to the service level."""
        return self._topology.available_bandwidth(
            self.node_of(service_a), self.node_of(service_b)
        )

    def __len__(self) -> int:
        return len(self._node_of)

    def __contains__(self, service_id: object) -> bool:
        return service_id in self._node_of

    def as_dict(self) -> Dict[str, str]:
        return dict(self._node_of)

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def validate_resources(
        self,
        descriptors: Iterable[ServiceDescriptor],
        reference_input_bps: float = 1e6,
    ) -> List[str]:
        """Check every node can run the services placed on it.

        Memory is additive; CPU demand is evaluated at a reference input
        rate (placement happens before configurations are chosen).  Returns
        a list of human-readable violations — empty means feasible.
        """
        by_id = {d.service_id: d for d in descriptors}
        violations: List[str] = []
        usage: Dict[str, Tuple[float, float]] = {}
        for service_id, node_id in self._node_of.items():
            descriptor = by_id.get(service_id)
            if descriptor is None:
                continue  # Pseudo-services (sender/receiver) have no demand.
            cpu, mem = usage.get(node_id, (0.0, 0.0))
            usage[node_id] = (
                cpu + descriptor.cpu_required(reference_input_bps),
                mem + descriptor.memory_mb,
            )
        for node_id, (cpu, mem) in usage.items():
            node = self._topology.get_node(node_id)
            if cpu > node.cpu_mips:
                violations.append(
                    f"node {node_id}: CPU demand {cpu:.1f} MIPS exceeds "
                    f"capacity {node.cpu_mips:.1f}"
                )
            if mem > node.memory_mb:
                violations.append(
                    f"node {node_id}: memory demand {mem:.1f} MB exceeds "
                    f"capacity {node.memory_mb:.1f}"
                )
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServicePlacement({self._node_of})"
