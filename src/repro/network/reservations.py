"""Bandwidth reservations: accounting for concurrent sessions.

The paper treats ``Bandwidth_AvailableBetween`` as given; in deployment the
number comes from what earlier sessions have *not* already claimed (its
introduction cites resource-reservation mechanisms as the alternative it
builds on).  :class:`BandwidthLedger` provides that bookkeeping:

- each admitted stream **reserves** bits/second along a concrete route;
- the **residual** bandwidth of a link is its capacity minus reservations;
- planning for the next session runs against a *residual topology* whose
  link capacities are the residuals;
- tearing a session down releases its reservations.

The ledger is deliberately strict: over-reserving a link raises, releases
must match an outstanding reservation, and every operation is O(route
length).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.network.topology import Link, NetworkTopology

__all__ = ["EdgeDemand", "Reservation", "BandwidthLedger"]


def _canonical(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class EdgeDemand:
    """One edge of a shared tree: a route and the bandwidth it carries.

    The group planner hands a list of these to
    :meth:`BandwidthLedger.reserve_group`; each demand is reserved *once*
    regardless of how many receiver classes (or sessions) share the edge
    — that single claim is the whole point of tree delivery.
    """

    route: Tuple[str, ...]
    bandwidth_bps: float
    label: str = ""


@dataclass(frozen=True)
class Reservation:
    """One admitted stream's claim on a route."""

    reservation_id: int
    route: Tuple[str, ...]
    bandwidth_bps: float
    label: str = ""

    def links(self) -> List[Tuple[str, str]]:
        return [_canonical(a, b) for a, b in zip(self.route, self.route[1:])]


class BandwidthLedger:
    """Tracks per-link reservations over one topology.

    The ledger is thread-safe: :meth:`reserve` validates residual capacity
    and claims every link of the route atomically under one lock, so
    concurrent admissions can never jointly over-subscribe a link.
    """

    def __init__(self, topology: NetworkTopology) -> None:
        self._topology = topology
        self._reserved: Dict[Tuple[str, str], float] = {}
        self._active: Dict[int, Reservation] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._generation = 0

    @property
    def topology(self) -> NetworkTopology:
        return self._topology

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped on reserve / release).

        Plan fingerprints embed this counter: a plan computed before a
        bandwidth reservation is never served from cache afterwards.
        """
        with self._lock:
            return self._generation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reserved_on(self, a: str, b: str) -> float:
        """Bits/second currently reserved on one link."""
        self._topology.get_link(a, b)  # validate the link exists
        with self._lock:
            return self._reserved.get(_canonical(a, b), 0.0)

    def residual(self, a: str, b: str) -> float:
        """Capacity remaining on one link."""
        link = self._topology.get_link(a, b)
        return max(0.0, link.bandwidth_bps - self.reserved_on(a, b))

    def active_reservations(self) -> List[Reservation]:
        with self._lock:
            return list(self._active.values())

    def total_reserved(self) -> float:
        """Sum of reservation demands (bps x links), an accounting aid."""
        with self._lock:
            return sum(
                reservation.bandwidth_bps * len(reservation.links())
                for reservation in self._active.values()
            )

    def residual_topology(self) -> NetworkTopology:
        """A topology whose link capacities are the current residuals.

        Planning the *next* session against this topology makes earlier
        admissions invisible except through the capacity they consumed.
        The snapshot is taken atomically: all residuals reflect one
        consistent ledger state even under concurrent reservations.
        """
        residual = NetworkTopology()
        for node in self._topology.nodes():
            residual.add_node(node)
        with self._lock:
            for link in self._topology.links():
                residual.add_link(
                    Link(
                        a=link.a,
                        b=link.b,
                        bandwidth_bps=max(
                            0.0,
                            link.bandwidth_bps
                            - self._reserved.get(_canonical(link.a, link.b), 0.0),
                        ),
                        delay_ms=link.delay_ms,
                        loss_rate=link.loss_rate,
                        cost=link.cost,
                    )
                )
        return residual

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(
        self,
        route: Sequence[str],
        bandwidth_bps: float,
        label: str = "",
    ) -> Reservation:
        """Claim ``bandwidth_bps`` on every link of ``route``.

        The route must be a connected node sequence; a single-node route
        (co-located endpoints) reserves nothing but is still tracked so
        teardown stays uniform.  Raises :class:`ValidationError` when any
        link lacks residual capacity — and in that case reserves nothing
        (all-or-nothing semantics).
        """
        if bandwidth_bps < 0:
            raise ValidationError("cannot reserve negative bandwidth")
        if not route:
            raise ValidationError("route must contain at least one node")
        pairs = list(zip(route, route[1:]))
        slack = 1.0 + 1e-9  # absorb float noise from exact-fit planning
        with self._lock:
            for a, b in pairs:
                if self.residual(a, b) * slack < bandwidth_bps:
                    raise ValidationError(
                        f"link {a}--{b} has {self.residual(a, b):.0f} bps "
                        f"residual, cannot reserve {bandwidth_bps:.0f}"
                    )
            for a, b in pairs:
                key = _canonical(a, b)
                self._reserved[key] = self._reserved.get(key, 0.0) + bandwidth_bps
            reservation = Reservation(
                reservation_id=next(self._ids),
                route=tuple(route),
                bandwidth_bps=bandwidth_bps,
                label=label,
            )
            self._active[reservation.reservation_id] = reservation
            self._generation += 1
            return reservation

    def reserve_group(
        self,
        demands: Sequence[EdgeDemand],
        label: str = "",
    ) -> List[Reservation]:
        """Reserve every edge of a shared tree, all-or-nothing.

        The shared-reservation mode behind group (multicast-style)
        delivery: each :class:`EdgeDemand` is claimed exactly once, under
        one lock acquisition, so a concurrent admission can never observe
        a half-reserved tree.  If any edge lacks residual capacity, every
        edge already claimed for this group is released before the
        :class:`ValidationError` propagates — a failed group reservation
        leaks nothing (property-tested in
        ``tests/test_reservation_properties.py``).
        """
        if not demands:
            raise ValidationError("a group reservation needs at least one edge")
        taken: List[Reservation] = []
        with self._lock:
            try:
                for index, demand in enumerate(demands):
                    taken.append(
                        self.reserve(
                            demand.route,
                            demand.bandwidth_bps,
                            label=demand.label or f"{label}#{index}",
                        )
                    )
            except ValidationError:
                for reservation in taken:
                    self.release(reservation)
                raise
        return taken

    def release(self, reservation: Reservation) -> None:
        """Return a reservation's bandwidth to the links."""
        with self._lock:
            if reservation.reservation_id not in self._active:
                raise ValidationError(
                    f"reservation {reservation.reservation_id} is not active"
                )
            del self._active[reservation.reservation_id]
            for key in reservation.links():
                remaining = self._reserved.get(key, 0.0) - reservation.bandwidth_bps
                if remaining <= 1e-9:
                    self._reserved.pop(key, None)
                else:
                    self._reserved[key] = remaining
            self._generation += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._active)
