"""E9 — ablation: the user-budget constraint.

Figure 4 carries the remaining budget through every round.  This bench
sweeps the budget on the Figure 6 scenario (every transcoder costs 1.0) and
on a synthetic scenario with heterogeneous costs, showing how the selected
path and satisfaction degrade as money runs out.
"""

from __future__ import annotations

from repro.core.selection import QoSPathSelector
from repro.workloads.paper import figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

FIG6_BUDGETS = (0.0, 0.5, 1.0, 2.0, 100.0)
SYNTH_BUDGETS = (0.0, 1.0, 2.0, 4.0, 8.0, 1000.0)


def test_budget_sweep_on_figure6(benchmark, save_artifact):
    def run(budget: float):
        return figure6_scenario(budget=budget).select()

    benchmark(lambda: run(100.0))
    rows = []
    for budget in FIG6_BUDGETS:
        result = run(budget)
        rows.append(
            (
                budget,
                ",".join(result.path) if result.success else "TERMINATE(FAILURE)",
                f"{result.satisfaction:.2f}" if result.success else "-",
                f"{result.accumulated_cost:.2f}" if result.success else "-",
            )
        )
    save_artifact(
        "ablation_budget_figure6.txt",
        "E9 — budget sweep on the Figure 6 scenario (each service costs "
        "1.0)\n\n"
        + format_table(["budget", "selected path", "satisfaction", "cost"], rows),
    )
    # Below 1.0 no transcoder is affordable -> failure; above it, the
    # result is budget-independent (the best chain needs one service).
    assert rows[0][1] == "TERMINATE(FAILURE)"
    assert rows[1][1] == "TERMINATE(FAILURE)"
    assert rows[2][1] == "sender,T7,receiver"
    assert rows[-1][1] == "sender,T7,receiver"


def test_budget_sweep_on_synthetic(benchmark, save_artifact):
    scenario = generate_scenario(
        SyntheticConfig(seed=2, n_services=20, max_service_cost=6.0)
    )
    graph = scenario.build_graph()

    def run(budget: float):
        return QoSPathSelector(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user.satisfaction(),
            budget=budget,
            record_trace=False,
        ).run()

    benchmark(lambda: run(1000.0))
    rows = []
    satisfactions = []
    for budget in SYNTH_BUDGETS:
        result = run(budget)
        satisfactions.append(result.satisfaction if result.success else 0.0)
        rows.append(
            (
                budget,
                ",".join(result.path) if result.success else "TERMINATE(FAILURE)",
                f"{result.satisfaction:.4f}" if result.success else "-",
                f"{result.accumulated_cost:.2f}" if result.success else "-",
            )
        )
    save_artifact(
        "ablation_budget_synthetic.txt",
        "E9 — budget sweep on a synthetic scenario (heterogeneous costs)\n\n"
        + format_table(["budget", "selected path", "satisfaction", "cost"], rows),
    )
    # More money never hurts.
    assert satisfactions == sorted(satisfactions)
