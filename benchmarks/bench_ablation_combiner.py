"""E11 — ablation: the combination function (Equation 1 and alternatives).

Equation 1 combines per-parameter satisfactions with the harmonic mean;
reference [29] extends it with weights.  This bench replaces the combiner
(harmonic / weighted / minimum / geometric) in a two-preference scenario
and reports how the chosen chain and its satisfaction respond.
"""

from __future__ import annotations

from repro.core.satisfaction import (
    CombinedSatisfaction,
    GeometricCombiner,
    HarmonicCombiner,
    MinimumCombiner,
    WeightedHarmonicCombiner,
)
from repro.core.selection import QoSPathSelector
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

COMBINERS = {
    "harmonic (Equa. 1)": HarmonicCombiner(),
    "weighted 3:1 fps": WeightedHarmonicCombiner([3.0, 1.0]),
    "weighted 1:3 res": WeightedHarmonicCombiner([1.0, 3.0]),
    "minimum": MinimumCombiner(),
    "geometric": GeometricCombiner(),
}


def test_combiner_ablation(benchmark, save_artifact):
    # Seed 14 yields a scenario where the chain crosses a bottleneck that
    # forces a real frame-rate / resolution trade-off, so the combiner
    # choice visibly moves the total (min 0.50 ... geometric 0.71).
    scenario = generate_scenario(
        SyntheticConfig(seed=14, n_services=24, preference_mode="rich")
    )
    graph = scenario.build_graph()
    base = scenario.user.satisfaction()

    def run_with(combiner):
        satisfaction = CombinedSatisfaction(
            functions=dict(base.functions), combiner=combiner
        )
        return QoSPathSelector(
            graph,
            scenario.registry,
            scenario.parameters,
            satisfaction,
            budget=scenario.user.budget,
            record_trace=False,
        ).run()

    benchmark(lambda: run_with(HarmonicCombiner()))

    rows = []
    for name, combiner in COMBINERS.items():
        result = run_with(combiner)
        config = result.configuration
        rows.append(
            (
                name,
                ",".join(result.path) if result.success else "FAIL",
                f"{result.satisfaction:.4f}" if result.success else "-",
                f"{config.get_value('frame_rate', 0.0):.1f}" if config else "-",
                f"{config.get_value('resolution', 0.0):.0f}" if config else "-",
            )
        )
    save_artifact(
        "ablation_combiner.txt",
        "E11 — combiner ablation on a two-preference scenario\n\n"
        + format_table(
            ["combiner", "selected path", "S_tot", "fps", "pixels"], rows
        ),
    )
    # All combiners must deliver a valid result on a feasible scenario.
    assert all(row[1] != "FAIL" for row in rows)
    # The harmonic total sits between minimum and geometric on the same
    # chain (when the chains coincide, which the assertion tolerates by
    # comparing totals only when paths match).
    by_name = {row[0]: row for row in rows}
    if by_name["minimum"][1] == by_name["geometric"][1] == by_name["harmonic (Equa. 1)"][1]:
        assert (
            float(by_name["minimum"][2])
            <= float(by_name["harmonic (Equa. 1)"][2]) + 1e-9
            <= float(by_name["geometric"][2]) + 2e-9
        )
