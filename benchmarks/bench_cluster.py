"""E20 — extension: multi-process cluster scaling and shard affinity.

Boots the real :class:`~repro.serve.cluster.ClusterSupervisor` (forked
workers, shared SO_REUSEPORT listeners, private plan caches) and pins
the two claims the cluster makes over the single-process gateway of E19:

- **scaling**: with per-process capacity fixed by the
  ``service_floor_ms`` knob (20 ms floor x 2 planning threads = 100
  plans/s per process, machine-independent), a 4-worker cluster serves
  at least **2.5x** the single-process request rate on the same seeded
  workload while the p99 of accepted requests stays inside the same
  deadline budget for both;
- **affinity determinism**: with ``--shard-affinity`` routing every
  device class to its ring owner, two same-seed campaigns against two
  freshly booted clusters reproduce the per-request outcome digest
  bit-for-bit and land the identical per-worker request distribution.

``CLUSTER_BENCH_REQUESTS`` scales the campaign down for CI smoke runs;
the default exercises the full 1200-request campaign at 400 req/s.
"""

from __future__ import annotations

import asyncio
import os

from repro.serve import (
    ClusterConfig,
    ClusterSupervisor,
    GatewayConfig,
    LoadgenConfig,
    PlanningGateway,
    run_loadgen,
)
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

REQUESTS = int(os.environ.get("CLUSTER_BENCH_REQUESTS", "1200"))
DEADLINE_MS = 250.0
SEED = 0
DISTINCT = 16

#: Capacity pinned by configuration, not host speed: each process runs
#: 2 planning threads padded to 20 ms/plan -> 100 plans/s per process.
#: The floor is deliberately tall so the knob — not the host CPU — is
#: the bottleneck even on single-core CI runners, where five processes
#: (4 workers + the load generator) share one core.
FLOOR_MS = 20.0
THREADS = 2
WORKERS = 4
PER_PROCESS_RATE = THREADS * (1000.0 / FLOOR_MS)
#: Offered at 3x single-process capacity: the single-process run
#: saturates and sheds, while the 4-worker cluster still has a 25%
#: headroom margin so kernel connection-balancing jitter cannot push
#: individual workers onto the deadline boundary.
OFFERED_RATE_PER_S = 3.0 * PER_PROCESS_RATE

MIN_SPEEDUP = 2.5

SCENARIO = generate_scenario(
    SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8)
)


def worker_gateway_config() -> GatewayConfig:
    # queue_depth bounds the worst admitted wait: 8 requests x 10 ms
    # effective service (20 ms floor / 2 threads) + one 20 ms slot is
    # ~100 ms — far enough inside the 250 ms budget that client-side
    # measurement overhead on a single-core runner cannot push accepted
    # requests over it, so the saturated single process sheds instead of
    # riding the deadline.
    return GatewayConfig(
        port=0, workers=THREADS, queue_depth=8,
        service_floor_ms=FLOOR_MS,
    )


def run_single_campaign(loadgen_config: LoadgenConfig):
    """One campaign against a fresh single-process gateway."""

    async def campaign():
        gateway = PlanningGateway(SCENARIO, worker_gateway_config())
        await gateway.start()
        try:
            config = LoadgenConfig(
                **{**loadgen_config.__dict__, "port": gateway.port}
            )
            return await run_loadgen(SCENARIO, config)
        finally:
            await gateway.drain()

    return asyncio.run(campaign())


def run_cluster_campaign(loadgen_config: LoadgenConfig, affinity: bool):
    """One campaign against a fresh 4-worker cluster, always drained."""

    async def campaign():
        supervisor = ClusterSupervisor(
            SCENARIO,
            gateway_config=worker_gateway_config(),
            cluster_config=ClusterConfig(workers=WORKERS, admin_port=0),
        )
        await supervisor.start()
        try:
            config = LoadgenConfig(
                **{
                    **loadgen_config.__dict__,
                    "port": supervisor.port,
                    "shard_affinity": affinity,
                    "admin_port": supervisor.admin_port if affinity else None,
                }
            )
            return await run_loadgen(SCENARIO, config)
        finally:
            await supervisor.drain()

    return asyncio.run(campaign())


def test_cluster_scaling_and_affinity_determinism(benchmark, save_artifact):
    saturating = LoadgenConfig(
        requests=REQUESTS, rate_per_s=OFFERED_RATE_PER_S, seed=SEED,
        deadline_ms=DEADLINE_MS, distinct=DISTINCT,
    )

    # ---- scaling regime --------------------------------------------------
    # Cluster first: forking is cleanest before any thread pool has run
    # in this process.  Kernel connection balancing spreads the load, so
    # no affinity here — this measures raw multi-process capacity.
    cluster = run_cluster_campaign(saturating, affinity=False)
    single = run_single_campaign(saturating)

    assert cluster.failed == 0, (
        f"{cluster.failed} requests got no explicit answer from the cluster"
    )
    assert single.failed == 0
    # Equal p99 budget on both sides: accepted requests meet the deadline
    # whether one process or four served them.
    cluster_p99 = cluster.latency_percentiles()["p99"]
    single_p99 = single.latency_percentiles()["p99"]
    assert cluster_p99 < DEADLINE_MS, (
        f"cluster accepted-request p99 {cluster_p99:.1f} ms breaches the "
        f"{DEADLINE_MS:.0f} ms deadline"
    )
    assert single_p99 < DEADLINE_MS, (
        f"single-process accepted-request p99 {single_p99:.1f} ms breaches "
        f"the {DEADLINE_MS:.0f} ms deadline"
    )
    # The single process saturates (sheds) at this offered rate; the
    # cluster rides through it with spare headroom.
    assert single.shed > 0, (
        "single process absorbed 4x its configured capacity — the floor "
        "knob is not pinning capacity"
    )
    assert cluster.completed > single.completed

    speedup = cluster.achieved_rate_per_s / max(single.achieved_rate_per_s, 1e-9)
    assert speedup >= MIN_SPEEDUP, (
        f"{WORKERS}-worker cluster served {cluster.achieved_rate_per_s:.0f} "
        f"req/s vs {single.achieved_rate_per_s:.0f} req/s single-process — "
        f"{speedup:.2f}x, below the {MIN_SPEEDUP:.1f}x floor"
    )

    # The cluster answer spread is honest: every answered request (200s
    # and explicit sheds alike) carried the identity of a real worker.
    spread = cluster.worker_distribution()
    assert sum(spread.values()) == REQUESTS - cluster.failed

    # ---- affinity determinism regime -------------------------------------
    # Sustained rate one process could almost absorb alone, so the shard
    # owners never shed and every outcome is deterministic.
    affinity_load = LoadgenConfig(
        requests=max(80, REQUESTS // 4), rate_per_s=PER_PROCESS_RATE,
        seed=SEED + 1, deadline_ms=DEADLINE_MS, distinct=DISTINCT,
    )
    first = run_cluster_campaign(affinity_load, affinity=True)
    second = run_cluster_campaign(affinity_load, affinity=True)

    assert first.failed == 0 and second.failed == 0
    assert first.completed == affinity_load.requests
    assert first.outcome_digest() == second.outcome_digest(), (
        "same-seed affinity campaigns diverged across fresh clusters"
    )
    assert first.worker_distribution() == second.worker_distribution()
    assert len(first.worker_distribution()) > 1, (
        "affinity routed every device class to one worker — ring is broken"
    )

    # Timing harness: boot-to-drained cluster burst (fork, serve, merge).
    burst = LoadgenConfig(
        requests=min(200, REQUESTS), rate_per_s=PER_PROCESS_RATE, seed=SEED,
        deadline_ms=DEADLINE_MS, distinct=DISTINCT,
    )
    benchmark.pedantic(
        lambda: run_cluster_campaign(burst, affinity=True),
        rounds=3, iterations=1, warmup_rounds=0,
    )

    rows = [
        ("requests per regime", f"{REQUESTS}"),
        ("per-process capacity",
         f"{PER_PROCESS_RATE:.0f} req/s ({THREADS} threads x "
         f"{FLOOR_MS:.0f} ms floor)"),
        ("offered rate", f"{OFFERED_RATE_PER_S:.0f} req/s"),
        ("single served rate",
         f"{single.achieved_rate_per_s:.0f} req/s "
         f"(shed {single.shed}, expired {single.timeouts})"),
        (f"{WORKERS}-worker served rate",
         f"{cluster.achieved_rate_per_s:.0f} req/s "
         f"(shed {cluster.shed}, expired {cluster.timeouts})"),
        ("speedup", f"{speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)"),
        ("single / cluster p99",
         f"{single_p99:.1f} / {cluster_p99:.1f} ms "
         f"(budget {DEADLINE_MS:.0f} ms)"),
        ("cluster answer spread",
         "  ".join(f"{w}:{n}" for w, n in sorted(spread.items()))),
        ("affinity digest", first.outcome_digest()[:16]),
        ("affinity spread",
         "  ".join(
             f"{w}:{n}" for w, n in sorted(first.worker_distribution().items())
         )),
    ]
    save_artifact(
        "cluster.txt",
        f"E20 — {WORKERS}-worker cluster vs single process "
        f"(deadline {DEADLINE_MS:.0f} ms, seed {SEED})\n\n"
        + format_table(["metric", "value"], rows),
    )
