"""E2 — Figure 2: a trans-coding service with multiple input/output links.

Regenerates the T1 vertex of the construction example — input links
{F5, F6}, output links {F10, F11, F12, F13} — and times descriptor-level
format matching, the primitive edge construction is built on.
"""

from __future__ import annotations

from repro.workloads.paper import figure2_service, figure3_scenario

from conftest import format_table


def test_figure2_vertex_links(benchmark, save_artifact):
    service = figure2_service()
    scenario = figure3_scenario()
    others = list(scenario.catalog)

    def match_all():
        return {
            other.service_id: service.matching_formats(other)
            for other in others
        }

    matches = benchmark(match_all)

    rows = [("input links", ", ".join(service.input_formats))]
    rows.append(("output links", ", ".join(service.output_formats)))
    feeders = [
        f"{sid} via {', '.join(fmts)}" for sid, fmts in matches.items() if fmts
    ]
    rows.append(("fed by", "; ".join(feeders) or "(only the sender)"))
    save_artifact(
        "figure2_service_links.txt",
        "Figure 2 — trans-coding service T1 with multiple I/O links\n\n"
        + format_table(["property", "value"], rows),
    )

    assert set(service.input_formats) == {"F5", "F6"}
    assert set(service.output_formats) == {"F10", "F11", "F12", "F13"}
    # T2 produces F6, so it can feed T1 (the figure's second input link).
    assert matches["T2"] == ("F6",)
