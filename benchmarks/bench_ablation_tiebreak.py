"""E14 — ablation: tie-break policy and optimizer strategy.

Two implementation choices the paper leaves open:

1. **Tie-breaking** in Step 4 (which equally-satisfying candidate settles
   first).  Every policy must reach the same final satisfaction — ties are
   equal by definition — but round counts and the reported path can
   differ.  We sweep all policies over tie-rich scenarios.
2. **The Optimize(...) strategy**: the analytic three-phase optimizer vs
   the dense grid-search reference — quality deltas and speed.
"""

from __future__ import annotations

import statistics
import time

from repro.core.gridsearch import GridSearchOptimizer
from repro.core.optimizer import ConfigurationOptimizer, OptimizationConstraints
from repro.core.selection import QoSPathSelector, TieBreakPolicy
from repro.workloads.paper import figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table


def test_tiebreak_policies(benchmark, save_artifact):
    rows = []
    satisfaction_per_policy = {}
    scenarios = [("figure6", figure6_scenario())]
    for seed in (3, 5, 9):
        scenarios.append(
            (
                f"synthetic-{seed}",
                generate_scenario(SyntheticConfig(seed=seed, n_services=20)),
            )
        )

    reference = scenarios[0][1]
    reference_graph = reference.build_graph()
    benchmark(
        lambda: reference.selector(
            graph=reference_graph, tie_break=TieBreakPolicy.PAPER
        ).run()
    )

    for name, scenario in scenarios:
        graph = scenario.build_graph()
        for policy in TieBreakPolicy:
            result = scenario.selector(graph=graph, tie_break=policy).run()
            satisfaction_per_policy.setdefault(name, set()).add(
                round(result.satisfaction, 9)
            )
            rows.append(
                (
                    name,
                    policy.value,
                    ",".join(result.path) if result.success else "FAIL",
                    f"{result.satisfaction:.4f}",
                    result.rounds_run,
                )
            )
    save_artifact(
        "ablation_tiebreak.txt",
        "E14 — tie-break policy sweep\n\n"
        + format_table(
            ["scenario", "policy", "path", "satisfaction", "rounds"], rows
        ),
    )
    # The invariant: policy never changes the achieved satisfaction.
    for name, values in satisfaction_per_policy.items():
        assert len(values) == 1, name


def test_optimizer_strategy(benchmark, save_artifact):
    """Analytic three-phase vs grid-search reference, per-call."""
    scenario = generate_scenario(
        SyntheticConfig(seed=14, n_services=24, preference_mode="rich")
    )
    graph = scenario.build_graph()
    satisfaction = scenario.user.satisfaction()
    analytic = ConfigurationOptimizer(scenario.parameters, satisfaction)
    grid = GridSearchOptimizer(scenario.parameters, satisfaction, grid_points=41)

    # Collect the optimization calls the selector actually makes.
    calls = []
    sender = graph.sender
    for edge in graph.edges():
        source = graph.vertex(edge.source)
        if source.is_sender:
            upstream = sender.source_configurations.get(edge.format_name)
        else:
            upstream = sender.source_configurations[
                next(iter(sender.source_configurations))
            ]
        if upstream is None:
            continue
        calls.append(
            OptimizationConstraints(
                upstream=upstream,
                caps=graph.vertex(edge.target).service.output_caps,
                fmt=scenario.registry.get(edge.format_name),
                bandwidth_bps=edge.bandwidth_bps,
            )
        )

    def run_all(optimizer):
        results = []
        for constraints in calls:
            choice = optimizer.optimize(constraints)
            results.append(choice.satisfaction if choice else None)
        return results

    benchmark(lambda: run_all(analytic))

    start = time.perf_counter()
    analytic_results = run_all(analytic)
    analytic_ms = (time.perf_counter() - start) * 1000.0
    start = time.perf_counter()
    grid_results = run_all(grid)
    grid_ms = (time.perf_counter() - start) * 1000.0

    comparable = [
        (a, g)
        for a, g in zip(analytic_results, grid_results)
        if a is not None and g is not None
    ]
    deltas = [a - g for a, g in comparable]
    rows = [
        ("optimize() calls", len(calls)),
        ("feasibility agreement", sum(
            1
            for a, g in zip(analytic_results, grid_results)
            if (a is None) == (g is None)
        )),
        ("mean satisfaction delta (analytic - grid)", f"{statistics.mean(deltas):+.5f}"),
        ("worst delta", f"{min(deltas):+.5f}"),
        ("analytic total (ms)", f"{analytic_ms:.2f}"),
        ("grid total (ms)", f"{grid_ms:.2f}"),
        ("speedup", f"{grid_ms / analytic_ms:.1f}x"),
    ]
    save_artifact(
        "ablation_optimizer.txt",
        "E14 — analytic optimizer vs grid-search reference\n\n"
        + format_table(["metric", "value"], rows),
    )
    # The analytic optimizer must never lose more than a whisker.
    assert min(deltas) > -0.02
