"""Shared helpers for the benchmark suite.

Every bench regenerates one paper artifact (table or figure) and times the
operation that produces it.  Artifacts are printed and saved under
``benchmarks/results/`` so `pytest benchmarks/ --benchmark-only` leaves the
regenerated tables on disk next to the timing numbers.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

# Some benches reuse scenario builders defined in the test suite; make the
# repository root importable regardless of how pytest was invoked
# (`pytest benchmarks/` from a bare entry point does not add the cwd).
_REPO_ROOT = pathlib.Path(__file__).parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_artifact():
    """Persist a regenerated table/series and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / name
        path.write_text(text + "\n")
        print(f"\n===== {name} =====")
        print(text)
        return path

    return _save


def format_table(headers, rows) -> str:
    """Minimal fixed-width table renderer for bench artifacts."""
    cells = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
