"""E6 — Figure 6: the selected path with and without T7.

The figure draws the example graph and marks the path the algorithm
selects in both variants.  This bench regenerates both selections and
times the with-T7 case end to end (graph construction + selection).
"""

from __future__ import annotations

from repro.workloads.paper import figure6_scenario

from conftest import format_table


def test_figure6_selected_paths(benchmark, save_artifact):
    def plan_with_t7():
        return figure6_scenario(include_t7=True).select()

    with_t7 = benchmark(plan_with_t7)
    without_t7 = figure6_scenario(include_t7=False).select()

    rows = [
        (
            "with T7",
            ",".join(with_t7.path),
            f"{with_t7.delivered_frame_rate:.2f}",
            f"{with_t7.satisfaction:.2f}",
        ),
        (
            "without T7",
            ",".join(without_t7.path),
            f"{without_t7.delivered_frame_rate:.2f}",
            f"{without_t7.satisfaction:.2f}",
        ),
    ]
    save_artifact(
        "figure6_paths.txt",
        "Figure 6 — selected path with and without trans-coding service "
        "T7\n\n"
        + format_table(["variant", "selected path", "fps", "satisfaction"], rows),
    )

    assert with_t7.path == ("sender", "T7", "receiver")
    assert f"{with_t7.satisfaction:.2f}" == "0.66"
    assert without_t7.path == ("sender", "T8", "receiver")
    assert without_t7.satisfaction < with_t7.satisfaction


def test_figure6_graph_statistics(benchmark, save_artifact):
    scenario = figure6_scenario()
    graph = benchmark(scenario.build_graph)
    rows = [
        ("vertices", len(graph)),
        ("edges", graph.edge_count()),
        ("sender out-degree", len(graph.out_edges("sender"))),
        ("receiver in-degree", len(graph.in_edges("receiver"))),
        ("distinct-format paths", len(list(graph.enumerate_paths()))),
    ]
    save_artifact(
        "figure6_graph_stats.txt",
        "Figure 6 — graph statistics\n\n" + format_table(["metric", "value"], rows),
    )
    assert len(graph) == 19
