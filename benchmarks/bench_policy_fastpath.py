"""E23 — extension: policy fast path vs selector path.

A skewed "mostly-compatible" audience: 70% of the device classes decode
the source format natively, and a one-rule policy (``skip`` gated on
``decodes``) answers them with a zero-hop plan before the selector runs.
The bench times every request individually, splits the latency
distribution by answering path, and asserts the acceptance criteria:

- fast-path p50 <= 0.1x the selector-path p50 on the same stream;
- fast-path throughput >= 5x selector-path throughput;
- two same-seed runs produce bit-identical outcome digests (the policy
  pass must not perturb determinism).

``POLICY_BENCH_REQUESTS`` scales the stream (CI runs a reduced size).
"""

from __future__ import annotations

import hashlib
import os
import time

from repro.planner.batch import BatchPlanner, PlanRequest
from repro.planner.workload import device_variants
from repro.policy.document import PolicyDocument, PolicyRule
from repro.policy.engine import PolicyEngine
from repro.policy.predicates import Decodes
from repro.profiles.device import DeviceProfile
from repro.sim.report import percentile
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

SEED = 23
N_REQUESTS = int(os.environ.get("POLICY_BENCH_REQUESTS", "400"))
N_CLASSES = 40
COMPATIBLE_PER_TEN = 7  # 70% of classes decode the source natively
MAX_P50_RATIO = 0.1
MIN_THROUGHPUT_RATIO = 5.0


def _workload():
    """(planner, requests): the skewed stream over a policy-armed planner."""
    scenario = generate_scenario(
        SyntheticConfig(
            seed=SEED,
            n_services=24,
            n_formats=10,
            n_nodes=12,
            hw_tier_fraction=0.5,
        )
    )
    source = scenario.content.format_names()[0]
    policy = PolicyDocument(
        name="bench-fastpath",
        rules=(
            PolicyRule(
                rule_id="skip-native",
                action="skip",
                predicates=(Decodes(source),),
                tolerance=0.05,
            ),
        ),
    )
    variants = device_variants(scenario.device, N_CLASSES)
    devices = []
    for index, variant in enumerate(variants):
        if index % 10 < COMPATIBLE_PER_TEN:
            devices.append(
                DeviceProfile(
                    device_id=f"{variant.device_id}-compat",
                    decoders=[source] + list(variant.decoders),
                    max_resolution=variant.max_resolution,
                    max_color_depth=variant.max_color_depth,
                    max_frame_rate=variant.max_frame_rate,
                )
            )
        else:
            devices.append(variant)
    requests = [
        PlanRequest(
            content=scenario.content,
            device=devices[index % N_CLASSES],
            user=scenario.user,
            sender_node=scenario.sender_node,
            receiver_node=scenario.receiver_node,
        )
        for index in range(N_REQUESTS)
    ]
    planner = BatchPlanner.for_scenario(
        scenario, policy_engine=PolicyEngine(policy), max_workers=1
    )
    return planner, requests


def _run_once():
    """One cold pass: per-request latencies split by path, plus a digest."""
    planner, requests = _workload()
    fast_us, selector_us, keys = [], [], []
    for index, request in enumerate(requests):
        start = time.perf_counter()
        plan, _hit, decision = planner.plan_with_policy_info(request)
        elapsed_us = (time.perf_counter() - start) * 1e6
        on_fast_path = decision is not None and decision.kind == "skip"
        (fast_us if on_fast_path else selector_us).append(elapsed_us)
        keys.append(
            (
                index,
                "skip" if on_fast_path else "selector",
                tuple(plan.result.formats),
                round(plan.result.satisfaction, 9),
            )
        )
    digest = hashlib.sha256(repr(tuple(keys)).encode("utf-8")).hexdigest()
    return fast_us, selector_us, digest


def test_policy_fastpath(benchmark, save_artifact):
    fast_us, selector_us, digest = _run_once()
    _fast2, _selector2, digest2 = _run_once()
    assert digest == digest2, "same-seed runs must agree bit for bit"
    assert fast_us and selector_us, "the stream must exercise both paths"

    fast_p50 = percentile(fast_us, 50.0)
    selector_p50 = percentile(selector_us, 50.0)
    fast_rate = len(fast_us) / (sum(fast_us) / 1e6)
    selector_rate = len(selector_us) / (sum(selector_us) / 1e6)

    # Steady state (warm caches on both paths) is what the harness times.
    planner, requests = _workload()
    for request in requests:
        planner.plan_with_policy_info(request)
    benchmark(
        lambda: [planner.plan_with_policy_info(r) for r in requests]
    )

    rows = [
        (
            "fast path (skip)",
            len(fast_us),
            f"{fast_p50:.1f}",
            f"{percentile(fast_us, 99.0):.1f}",
            f"{fast_rate:.0f}",
        ),
        (
            "selector",
            len(selector_us),
            f"{selector_p50:.1f}",
            f"{percentile(selector_us, 99.0):.1f}",
            f"{selector_rate:.0f}",
        ),
    ]
    save_artifact(
        "policy_fastpath.txt",
        f"E23 — policy fast path ({N_REQUESTS} requests, {N_CLASSES} device "
        f"classes, {COMPATIBLE_PER_TEN * 10}% compatible, seed {SEED})\n\n"
        + format_table(
            ["path", "requests", "p50 (us)", "p99 (us)", "req/s"], rows
        )
        + f"\n\np50 ratio: {fast_p50 / selector_p50:.3f} "
        f"(floor {MAX_P50_RATIO})\n"
        f"throughput ratio: {fast_rate / selector_rate:.1f}x "
        f"(floor {MIN_THROUGHPUT_RATIO}x)\n"
        f"outcome digest: {digest}",
    )

    assert fast_p50 <= MAX_P50_RATIO * selector_p50, (
        f"fast-path p50 {fast_p50:.1f}us exceeds "
        f"{MAX_P50_RATIO}x selector p50 {selector_p50:.1f}us"
    )
    assert fast_rate >= MIN_THROUGHPUT_RATIO * selector_rate, (
        f"fast-path throughput {fast_rate:.0f}/s is below "
        f"{MIN_THROUGHPUT_RATIO}x selector throughput {selector_rate:.0f}/s"
    )
