"""E18 — extension: discrete-event simulator throughput + determinism.

A thousand sessions arrive over ten virtual minutes while the backbone
services crash in a wave, the primary route degrades, and a flash crowd
piles on — the full fault taxonomy in one run.  The bench reports
events/sec through the virtual clock and asserts two floors:

- throughput: the event loop must clear ``MIN_EVENTS_PER_S`` (a
  deliberately conservative bound for shared CI runners);
- determinism: a second run of the same configuration must produce a
  bit-identical trace digest and fleet report.

``SIM_BENCH_SESSIONS`` scales the organic-session count down for smoke
runs (CI uses a reduced scale; the default is the full 900 + 100-burst
thousand-session campaign).
"""

from __future__ import annotations

import os
import time

from repro.sim import (
    FlashCrowd,
    LinkDegradation,
    ServiceCrash,
    SimulationConfig,
    UniformArrivals,
    run_simulation,
)
from repro.sim.scenarios import _backbone_services, _base, _primary_route

from conftest import format_table

ORGANIC_SESSIONS = int(os.environ.get("SIM_BENCH_SESSIONS", "900"))
BURST_SESSIONS = max(10, ORGANIC_SESSIONS // 9)
ARRIVAL_WINDOW_S = max(60.0, ORGANIC_SESSIONS * (600.0 / 900.0))
SEED = 7
MIN_EVENTS_PER_S = 100.0


def _config() -> SimulationConfig:
    scenario = _base(SEED)
    route = _primary_route(scenario)
    faults = tuple(
        ServiceCrash(sid, start_s=0.2 * ARRIVAL_WINDOW_S + 20.0 * i, downtime_s=15.0)
        for i, sid in enumerate(_backbone_services(scenario))
    ) + (
        LinkDegradation(
            route[0],
            route[1],
            start_s=0.33 * ARRIVAL_WINDOW_S,
            duration_s=30.0,
            factor=0.2,
            ramp_steps=3,
            ramp_s=6.0,
        ),
        FlashCrowd(
            start_s=0.5 * ARRIVAL_WINDOW_S, sessions=BURST_SESSIONS, over_s=10.0
        ),
    )
    return SimulationConfig(
        scenario=scenario,
        name="bench-storm",
        seed=SEED,
        sessions=ORGANIC_SESSIONS,
        arrivals=UniformArrivals(over_s=ARRIVAL_WINDOW_S),
        session_duration_s=25.0,
        faults=faults,
        trace_capacity=20_000,
    )


def test_simulator_throughput_and_determinism(benchmark, save_artifact):
    start = time.perf_counter()
    report = run_simulation(_config())
    elapsed = time.perf_counter() - start
    events_per_s = report.events_processed / elapsed if elapsed > 0 else 0.0

    # Determinism gate: an identical configuration replays bit-identically.
    replay = run_simulation(_config())
    assert replay.trace_digest == report.trace_digest
    assert replay.to_dict() == report.to_dict()

    # Timing harness measures the steady repeat of the same run.
    benchmark(lambda: run_simulation(_config()))

    total = ORGANIC_SESSIONS + BURST_SESSIONS
    rows = [
        ("sessions (organic + burst)", f"{ORGANIC_SESSIONS} + {BURST_SESSIONS}"),
        ("admitted / completed", f"{report.admitted} / {report.completed}"),
        ("replans (failed)", f"{report.total_replans} ({report.total_failed_replans})"),
        ("events processed", f"{report.events_processed}"),
        ("wall time", f"{elapsed:.2f}s"),
        ("events/sec", f"{events_per_s:.0f}"),
        ("virtual horizon", f"{report.horizon_s:.0f}s"),
        ("trace digest", report.trace_digest[:16]),
    ]
    save_artifact(
        "simulator.txt",
        f"E18 — discrete-event simulator ({total} sessions, fault storm, "
        f"seed {SEED})\n\n" + format_table(["metric", "value"], rows),
    )

    # The campaign must actually exercise the machinery end to end.
    assert report.sessions == total
    assert report.admitted > 0
    assert report.completed > 0
    assert report.events_processed > total  # arrivals plus segment ticks

    assert events_per_s >= MIN_EVENTS_PER_S, (
        f"simulator cleared only {events_per_s:.0f} events/s "
        f"(floor {MIN_EVENTS_PER_S:.0f})"
    )
