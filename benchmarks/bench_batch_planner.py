"""E17 — extension: plan-cache + batch-planner throughput.

One proxy, 1000 arriving sessions drawn from 32 device classes — the
workload the plan cache exists for.  The bench times the cached concurrent
batch against the uncached baseline and records throughput, hit rate, and
the speedup.  The acceptance floor (cached >= 5x uncached on this
workload) is asserted, not just reported.
"""

from __future__ import annotations

import time

from repro.planner import BatchPlanner, PlanCache, synthetic_requests
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

N_SESSIONS = 1000
N_DISTINCT = 32
WORKERS = 8
MIN_SPEEDUP = 5.0


def _workload():
    scenario = generate_scenario(
        SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8)
    )
    return scenario, synthetic_requests(scenario, N_SESSIONS, N_DISTINCT)


def test_batch_planner_throughput(benchmark, save_artifact):
    scenario, requests = _workload()

    # Uncached baseline: every session planned from scratch.
    baseline = BatchPlanner.for_scenario(scenario, max_workers=WORKERS)
    start = time.perf_counter()
    uncached_plans = baseline.plan_batch(requests, use_cache=False)
    uncached_s = time.perf_counter() - start

    # Cached run, cold cache: 32 misses then 968 hits.
    cache = PlanCache(max_entries=256)
    planner = BatchPlanner.for_scenario(
        scenario, cache=cache, max_workers=WORKERS
    )
    start = time.perf_counter()
    cached_plans = planner.plan_batch(requests)
    cached_s = time.perf_counter() - start
    stats = cache.stats  # snapshot before the warm rounds below add hits

    # Steady state (warm cache) is what the timing harness measures.
    benchmark(lambda: planner.plan_batch(requests))
    speedup = uncached_s / cached_s
    rows = [
        (
            "uncached",
            f"{uncached_s * 1000:.1f}",
            f"{N_SESSIONS / uncached_s:.0f}",
            "-",
            "-",
        ),
        (
            "cached (cold)",
            f"{cached_s * 1000:.1f}",
            f"{N_SESSIONS / cached_s:.0f}",
            f"{stats.hits}/{N_SESSIONS}",
            f"{speedup:.1f}x",
        ),
    ]
    save_artifact(
        "batch_planner.txt",
        f"E17 — plan-cache batch planner ({N_SESSIONS} sessions, "
        f"{N_DISTINCT} device classes, {WORKERS} workers)\n\n"
        + format_table(
            ["mode", "time (ms)", "plans/s", "cache hits", "speedup"], rows
        ),
    )

    # Correctness: cached plans match the uncached baseline one-for-one.
    assert len(cached_plans) == len(uncached_plans) == N_SESSIONS
    for cached, fresh in zip(cached_plans, uncached_plans):
        assert cached.result.path == fresh.result.path
        assert cached.result.formats == fresh.result.formats
        assert cached.result.satisfaction == fresh.result.satisfaction

    # The cache saw exactly one computation per device class.
    assert stats.misses == N_DISTINCT
    assert stats.hits == N_SESSIONS - N_DISTINCT

    # Acceptance floor: memoization must buy at least 5x on this workload.
    assert speedup >= MIN_SPEEDUP, (
        f"cached batch only {speedup:.1f}x faster than uncached "
        f"(floor {MIN_SPEEDUP}x)"
    )
