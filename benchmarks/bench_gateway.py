"""E19 — extension: serving gateway throughput, tail latency, shedding.

Drives the real asyncio planning gateway (real sockets, real HTTP/1.1)
through the seeded open-loop load generator and asserts the serving
SLOs from two regimes:

- **sustained**: at the target arrival rate every request is served with
  p99 end-to-end latency under the request deadline — no sheds, no
  timeouts, no failures — and a same-seed rerun against a fresh daemon
  reproduces the per-request outcome digest bit-for-bit;
- **overload**: at 2x the gateway's configured capacity (pinned by the
  ``service_floor_ms`` knob so the saturation point is machine-
  independent) the bounded deadline queue sheds explicitly with 429s
  while the p99 of *accepted* requests stays within the deadline and
  every request still gets an answer.

``GATEWAY_BENCH_REQUESTS`` / ``GATEWAY_BENCH_RATE`` scale the campaign
down for CI smoke runs; defaults exercise the full 500 req/s target.
"""

from __future__ import annotations

import asyncio
import os

from repro.serve import (
    GatewayConfig,
    LoadgenConfig,
    PlanningGateway,
    run_loadgen,
)
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

REQUESTS = int(os.environ.get("GATEWAY_BENCH_REQUESTS", "1500"))
RATE_PER_S = float(os.environ.get("GATEWAY_BENCH_RATE", "500"))
DEADLINE_MS = 250.0
SEED = 0

#: Overload regime: 2 workers padded to 5 ms/request -> ~400 plans/s of
#: configured capacity, loaded at 2x that.
FLOOR_MS = 5.0
FLOOR_WORKERS = 2
OVERLOAD_RATE_PER_S = 2.0 * FLOOR_WORKERS * (1000.0 / FLOOR_MS)

SCENARIO = generate_scenario(
    SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8)
)


def run_campaign(gateway_config: GatewayConfig, loadgen_config: LoadgenConfig):
    """Boot a fresh gateway, fire one campaign, always drain."""

    async def campaign():
        gateway = PlanningGateway(SCENARIO, gateway_config)
        await gateway.start()
        try:
            config = LoadgenConfig(
                **{**loadgen_config.__dict__, "port": gateway.port}
            )
            return await run_loadgen(SCENARIO, config)
        finally:
            await gateway.drain()

    return asyncio.run(campaign())


def test_gateway_sustained_and_overload(benchmark, save_artifact):
    # ---- sustained regime ------------------------------------------------
    sustained_gateway = GatewayConfig(port=0, workers=4, queue_depth=256)
    sustained_load = LoadgenConfig(
        requests=REQUESTS, rate_per_s=RATE_PER_S, seed=SEED,
        deadline_ms=DEADLINE_MS, distinct=16,
    )
    report = run_campaign(sustained_gateway, sustained_load)
    latency = report.latency_percentiles()

    assert report.completed == REQUESTS, (
        f"only {report.completed}/{REQUESTS} served "
        f"(shed {report.shed}, timeouts {report.timeouts}, "
        f"failed {report.failed})"
    )
    assert report.failed == 0
    assert latency["p99"] < DEADLINE_MS, (
        f"p99 {latency['p99']:.1f} ms breaches the {DEADLINE_MS:.0f} ms "
        f"deadline at {RATE_PER_S:.0f} req/s"
    )
    assert report.achieved_rate_per_s >= 0.8 * RATE_PER_S

    # Determinism gate: same seed, fresh daemon, identical outcomes.
    replay = run_campaign(sustained_gateway, sustained_load)
    assert replay.outcome_digest() == report.outcome_digest()

    # ---- overload regime -------------------------------------------------
    overload_gateway = GatewayConfig(
        port=0, workers=FLOOR_WORKERS, queue_depth=32,
        service_floor_ms=FLOOR_MS,
    )
    overload_load = LoadgenConfig(
        requests=REQUESTS, rate_per_s=OVERLOAD_RATE_PER_S, seed=SEED,
        deadline_ms=DEADLINE_MS, distinct=16,
    )
    overload = run_campaign(overload_gateway, overload_load)
    overload_latency = overload.latency_percentiles()

    # Every request is answered; the excess is shed explicitly, and the
    # requests the gateway *did* accept still meet the deadline.
    assert overload.failed == 0, (
        f"{overload.failed} requests got no explicit answer under overload"
    )
    assert overload.shed > 0, "2x overload produced no 429 sheds"
    assert overload.completed > 0
    assert overload_latency["p99"] < DEADLINE_MS, (
        f"accepted-request p99 {overload_latency['p99']:.1f} ms breaches "
        f"the deadline under overload"
    )

    # Timing harness: steady repeat of a short sustained burst.
    burst = LoadgenConfig(
        requests=min(200, REQUESTS), rate_per_s=RATE_PER_S, seed=SEED,
        deadline_ms=DEADLINE_MS, distinct=16,
    )
    benchmark(lambda: run_campaign(sustained_gateway, burst))

    rows = [
        ("requests per regime", f"{REQUESTS}"),
        ("sustained offered rate", f"{RATE_PER_S:.0f} req/s"),
        ("sustained served rate", f"{report.achieved_rate_per_s:.0f} req/s"),
        ("sustained p50/p95/p99",
         f"{latency['p50']:.1f} / {latency['p95']:.1f} / "
         f"{latency['p99']:.1f} ms"),
        ("outcome digest", report.outcome_digest()[:16]),
        ("overload offered rate", f"{OVERLOAD_RATE_PER_S:.0f} req/s "
         f"(capacity ~{OVERLOAD_RATE_PER_S / 2:.0f})"),
        ("overload served / shed / expired",
         f"{overload.completed} / {overload.shed} / {overload.timeouts}"),
        ("overload accepted p99", f"{overload_latency['p99']:.1f} ms"),
    ]
    save_artifact(
        "gateway.txt",
        f"E19 — planning gateway under load (deadline {DEADLINE_MS:.0f} ms, "
        f"seed {SEED})\n\n" + format_table(["metric", "value"], rows),
    )
