"""E22 — extension: shared adaptation trees for multicast group planning.

One live stream, 1000 sessions spread over 32 receiver device classes —
the live-event workload ``repro.group`` exists for.  Per-session planning
pays optimize calls and reserved bandwidth once *per session*; grouped
planning pays once per distinct class (optimize) and once per tree edge
(bandwidth), so both aggregates must be sublinear in the session count.

Asserted floors, not just reported numbers:

- aggregate reserved bandwidth and optimize-call slopes (per added
  session) at most half the per-session baseline's slopes;
- every feasible class's branch satisfaction equal to its standalone
  uncached optimum (prefix sharing never trades quality);
- same-seed tree digests bit-identical across two from-scratch builds.

``GROUP_BENCH_SESSIONS`` scales the workload down for CI smoke runs.
"""

from __future__ import annotations

import os
import time

from repro.group import GroupPlanner, GroupReceiver, GroupRequest
from repro.planner import BatchPlanner, PlanRequest, device_variants
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

N_SESSIONS = int(os.environ.get("GROUP_BENCH_SESSIONS", "1000"))
N_CLASSES = min(32, N_SESSIONS)
MAX_SLOPE_RATIO = 0.5


def _scenario():
    return generate_scenario(
        SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8)
    )


def _receivers(scenario, sessions):
    variants = device_variants(scenario.device, N_CLASSES)
    base, extra = divmod(sessions, N_CLASSES)
    return tuple(
        GroupReceiver(
            class_id=f"class-{index}",
            device=device,
            sessions=base + (1 if index < extra else 0),
        )
        for index, device in enumerate(variants)
    )


def _group_request(scenario, sessions):
    return GroupRequest(
        content=scenario.content,
        user=scenario.user,
        sender_node=scenario.sender_node,
        receiver_node=scenario.receiver_node,
        receivers=_receivers(scenario, sessions),
        context=scenario.context,
    )


def _plan_request(scenario, request, receiver):
    return PlanRequest(
        content=request.content,
        device=receiver.device,
        user=request.user,
        sender_node=request.sender_node,
        receiver_node=request.receiver_node,
        context=request.context,
    )


def _chain_bps(planner, result):
    return sum(
        result.configuration.required_bandwidth(planner.registry.get(name))
        for name in result.formats
    )


def _baseline(scenario, request):
    """Per-session planning: every session from scratch, reserved alone."""
    planner = BatchPlanner.for_scenario(scenario)
    reserved_bps = 0.0
    optimize_calls = 0
    satisfaction = {}
    for receiver in request.receivers:
        session = planner.plan_uncached(
            _plan_request(scenario, request, receiver)
        )
        result = session.result
        if not result.success:
            continue
        satisfaction[receiver.class_id] = result.satisfaction
        per_chain = _chain_bps(planner, result)
        reserved_bps += per_chain * receiver.sessions
        if result.stats is not None:
            optimize_calls += result.stats.optimize_calls * receiver.sessions
    return reserved_bps, optimize_calls, satisfaction


def _grouped(scenario, sessions):
    """One shared tree from a cold planner; returns its aggregates."""
    planner = GroupPlanner.for_scenario(scenario)
    plan = planner.plan(_group_request(scenario, sessions))
    return (
        plan.tree.tree_bandwidth_bps(),
        plan.optimize_calls(),
        plan,
        planner,
    )


def test_group_planner_sublinear(benchmark, save_artifact):
    scenario = _scenario()
    half = max(N_CLASSES, N_SESSIONS // 2)
    request = _group_request(scenario, N_SESSIONS)

    start = time.perf_counter()
    base_bps, base_calls, base_satisfaction = _baseline(scenario, request)
    baseline_s = time.perf_counter() - start

    start = time.perf_counter()
    bps_half, calls_half, _, _ = _grouped(scenario, half)
    bps_full, calls_full, plan, planner = _grouped(scenario, N_SESSIONS)
    grouped_s = (time.perf_counter() - start) / 2.0

    # Steady state: a repeated group against an unchanged world is one
    # tree-cache lookup.
    benchmark(lambda: planner.plan(request))

    # Slopes per added session: the baseline pays linearly, the grouped
    # plan must pay at most half of that per session (it actually pays
    # ~nothing: work scales with classes, bandwidth with tree edges).
    added = N_SESSIONS - half
    base_bps_slope = base_bps / N_SESSIONS
    base_calls_slope = base_calls / N_SESSIONS
    bps_slope = (bps_full - bps_half) / added if added else 0.0
    calls_slope = (calls_full - calls_half) / added if added else 0.0

    rows = [
        (
            "per-session",
            f"{base_calls}",
            f"{base_bps / 1e6:.2f}",
            f"{base_bps_slope / 1e3:.2f}",
            f"{baseline_s * 1000:.1f}",
        ),
        (
            "grouped",
            f"{calls_full}",
            f"{bps_full / 1e6:.2f}",
            f"{bps_slope / 1e3:.2f}",
            f"{grouped_s * 1000:.1f}",
        ),
    ]
    save_artifact(
        "group_planner.txt",
        f"E22 — shared adaptation trees ({N_SESSIONS} sessions, "
        f"{N_CLASSES} receiver classes)\n"
        f"tree: {len(plan.tree.edges)} edges, {plan.tree.branch_count} "
        f"leaves, {plan.tree.shared_edge_count} shared; "
        f"saved {plan.tree.saved_bandwidth_bps() / 1e6:.2f} Mbps\n\n"
        + format_table(
            ["mode", "optimize calls", "reserved Mbps",
             "slope (kbps/session)", "time (ms)"],
            rows,
        ),
    )

    # Every class the baseline can serve gets a branch at the exact same
    # satisfaction; classes it cannot serve are explicit fallbacks.
    grouped_satisfaction = plan.satisfaction_by_class()
    assert set(grouped_satisfaction) == set(base_satisfaction)
    for class_id, expected in base_satisfaction.items():
        assert grouped_satisfaction[class_id] == expected, (
            f"{class_id}: branch satisfaction "
            f"{grouped_satisfaction[class_id]} != standalone {expected}"
        )
    fallback_ids = {class_id for class_id, _reason in plan.tree.fallbacks}
    assert fallback_ids == {
        receiver.class_id
        for receiver in request.receivers
        if receiver.class_id not in base_satisfaction
    }

    # Sublinearity floors (the ISSUE's acceptance gate).
    assert bps_slope <= MAX_SLOPE_RATIO * base_bps_slope, (
        f"grouped bandwidth slope {bps_slope:.1f} bps/session exceeds "
        f"{MAX_SLOPE_RATIO}x baseline {base_bps_slope:.1f}"
    )
    assert calls_slope <= MAX_SLOPE_RATIO * base_calls_slope, (
        f"grouped optimize-call slope {calls_slope:.3f}/session exceeds "
        f"{MAX_SLOPE_RATIO}x baseline {base_calls_slope:.3f}"
    )
    # Aggregate totals too, not just slopes: one tree must cost less than
    # half of what per-session planning pays at this scale.
    assert bps_full <= MAX_SLOPE_RATIO * base_bps
    assert calls_full <= MAX_SLOPE_RATIO * base_calls


def test_group_digest_deterministic(save_artifact):
    """Two from-scratch builds of the same seed agree bit for bit."""
    digests = []
    for _ in range(2):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        plan = planner.plan(_group_request(scenario, N_SESSIONS))
        digests.append(plan.tree.digest())
    assert digests[0] == digests[1]
    save_artifact(
        "group_planner_digest.txt",
        f"E22 — same-seed tree digest ({N_SESSIONS} sessions, "
        f"{N_CLASSES} classes)\n{digests[0]}\n",
    )
