"""E18 — selector hot path at scale: heap settle loop vs the seed selector.

Extends the E8 sweep past the paper's 200-service demo scale (500 / 1000 /
2000 services) and times the production :class:`QoSPathSelector` — lazy
settle heap, freeze-time edge order, dominance pre-filter, optimize memo —
against the seed linear-scan implementation preserved in
``tests/reference_selector.py``.  Results must be **bit-identical**; the
gate requires a >= 3x wall-clock speedup at every size from 200 services
up (CI runs this next to the batch-planner gate).

The artifact records the new hot-path counters alongside the timings:
optimize() calls (the dominant cost), memo hits, dominance skips, and
heap operations.
"""

from __future__ import annotations

import time

from repro.core.optimizer import OptimizeMemo
from repro.core.selection import QoSPathSelector
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table
from tests.reference_selector import SeedReferenceSelector

SIZES = (200, 500, 1000, 2000)
REPEATS = 2  # best-of timings; the equivalence check runs on every repeat
MIN_SPEEDUP = 3.0


def _scenario_for(size: int):
    scenario = generate_scenario(
        SyntheticConfig(
            seed=1,
            n_services=size,
            n_nodes=max(6, size // 6),
            n_formats=max(8, size // 4),
        )
    )
    return scenario, scenario.build_graph()


def _time_selector(make_selector):
    best_elapsed, result = None, None
    for _ in range(REPEATS):
        selector = make_selector()
        start = time.perf_counter()
        outcome = selector.run()
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, result = elapsed, outcome
    return result, best_elapsed


def test_selector_hotpath_speedup(benchmark, save_artifact):
    medium_scenario, medium_graph = _scenario_for(200)
    benchmark(
        lambda: QoSPathSelector.for_user(
            medium_graph,
            medium_scenario.registry,
            medium_scenario.parameters,
            medium_scenario.user,
            record_trace=False,
            optimize_memo=OptimizeMemo(),
        ).run()
    )

    rows = []
    speedups = {}
    for size in SIZES:
        scenario, graph = _scenario_for(size)

        def production():
            return QoSPathSelector.for_user(
                graph,
                scenario.registry,
                scenario.parameters,
                scenario.user,
                record_trace=False,
                optimize_memo=OptimizeMemo(),
            )

        def seed_reference():
            return SeedReferenceSelector.for_user(
                graph,
                scenario.registry,
                scenario.parameters,
                scenario.user,
                record_trace=False,
            )

        prod_result, prod_s = _time_selector(production)
        ref_result, ref_s = _time_selector(seed_reference)

        # The tentpole contract: bit-identical SelectionResults (stats are
        # compare=False observability, everything else must match).
        assert prod_result == ref_result, f"divergence at {size} services"

        speedup = ref_s / prod_s if prod_s > 0 else float("inf")
        speedups[size] = speedup
        stats = prod_result.stats
        ref_stats = ref_result.stats
        rows.append(
            (
                size,
                f"{ref_s * 1000:.1f}",
                f"{prod_s * 1000:.1f}",
                f"{speedup:.1f}x",
                f"{ref_stats.optimize_calls}",
                f"{stats.optimize_calls}",
                f"{stats.optimize_memo_hits}",
                f"{stats.dominance_skips}",
                f"{stats.heap_pushes}",
                f"{stats.heap_stale_pops}",
            )
        )

    save_artifact(
        "selector_hotpath.txt",
        "E18 — selector hot path vs seed selector "
        f"(best of {REPEATS}, bit-identical results asserted)\n\n"
        + format_table(
            [
                "services",
                "seed (ms)",
                "heap (ms)",
                "speedup",
                "opt calls (seed)",
                "opt calls (heap)",
                "memo hits",
                "dominance skips",
                "heap pushes",
                "stale pops",
            ],
            rows,
        )
        + f"\n\ngate: >= {MIN_SPEEDUP:.1f}x at every size from 200 services up",
    )

    for size, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"selector speedup regressed at {size} services: "
            f"{speedup:.2f}x < {MIN_SPEEDUP:.1f}x"
        )
