"""E3 — Figure 3: constructing the directed trans-coding graph.

Regenerates the construction example (one sender, one receiver, seven
intermediaries) as an adjacency listing with format-labeled edges, and
times graph construction itself.
"""

from __future__ import annotations

from repro.workloads.paper import figure3_scenario

from conftest import format_table


def test_figure3_graph_construction(benchmark, save_artifact):
    scenario = figure3_scenario()
    graph = benchmark(scenario.build_graph)

    rows = []
    for vertex in graph.vertices():
        edges = graph.out_edges(vertex.service_id)
        listing = ", ".join(f"--{e.format_name}--> {e.target}" for e in edges)
        rows.append((vertex.service_id, listing or "(sink)"))
    paths = list(graph.enumerate_paths())
    summary = (
        f"vertices: {len(graph)}   edges: {graph.edge_count()}   "
        f"sender->receiver paths (distinct formats): {len(paths)}"
    )
    save_artifact(
        "figure3_graph.txt",
        "Figure 3 — directed trans-coding graph (construction example)\n\n"
        + format_table(["vertex", "outgoing edges"], rows)
        + "\n\n"
        + summary,
    )

    # The paper's stated structure.
    transcoders = [v for v in graph.vertices() if v.service.is_transcoder]
    assert len(transcoders) == 7
    assert any(
        e.target == "T1" and e.format_name == "F5"
        for e in graph.out_edges("sender")
    )
    assert len(paths) > 0
