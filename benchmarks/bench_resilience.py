"""E15 — extension: resilience through re-composition.

The introduction argues composition makes trans-coding "fast and reliable
since its components can be simpler and they can also be replicated across
the network".  This bench measures that resilience directly: services are
removed from the Figure 6 catalog in decreasing order of usefulness and the
selection re-runs after each removal, charting how gracefully satisfaction
degrades before delivery finally fails.
"""

from __future__ import annotations

from repro.core.graph import AdaptationGraphBuilder
from repro.core.selection import QoSPathSelector
from repro.network.placement import ServicePlacement
from repro.services.catalog import ServiceCatalog
from repro.workloads.paper import figure6_scenario

from conftest import format_table


def run_without(scenario, removed):
    """Re-run selection with some services removed from the catalog."""
    catalog = ServiceCatalog(
        d for d in scenario.catalog if d.service_id not in removed
    )
    placement = ServicePlacement(
        scenario.topology,
        {
            sid: node
            for sid, node in scenario.placement.as_dict().items()
            if sid not in removed
        },
    )
    graph = AdaptationGraphBuilder(catalog, placement).build(
        scenario.content,
        scenario.device,
        scenario.sender_node,
        scenario.receiver_node,
    )
    return QoSPathSelector.for_user(
        graph,
        scenario.registry,
        scenario.parameters,
        scenario.user,
        record_trace=False,
    ).run()


def test_graceful_degradation(benchmark, save_artifact):
    scenario = figure6_scenario()

    benchmark(lambda: run_without(scenario, set()))

    removed: set = set()
    rows = []
    satisfactions = []
    while True:
        result = run_without(scenario, removed)
        rows.append(
            (
                len(removed),
                ",".join(sorted(removed, key=lambda s: int(s[1:]))) or "(none)",
                ",".join(result.path) if result.success else "TERMINATE(FAILURE)",
                f"{result.satisfaction:.3f}" if result.success else "-",
            )
        )
        if not result.success:
            break
        satisfactions.append(result.satisfaction)
        # Kill the transcoder the current best chain depends on.
        casualties = [
            sid for sid in result.path if sid not in ("sender", "receiver")
        ]
        if not casualties:
            break  # direct delivery; nothing left to kill
        removed = removed | set(casualties)

    save_artifact(
        "resilience.txt",
        "E15 — graceful degradation as winning services fail "
        "(Figure 6 scenario)\n\n"
        + format_table(
            ["failures", "removed services", "selected path", "satisfaction"],
            rows,
        ),
    )

    # Shape: satisfaction decreases monotonically, the framework survives
    # several losses, and the very last row is the failure.
    assert satisfactions == sorted(satisfactions, reverse=True)
    assert len(satisfactions) >= 4  # at least four viable compositions
    assert rows[-1][2] == "TERMINATE(FAILURE)"


def test_replicated_services_mask_failures(benchmark, save_artifact):
    """With a replica of the winning service on another host, losing the
    primary costs (almost) nothing."""
    from repro.services.descriptor import ServiceDescriptor

    scenario = figure6_scenario()
    # Clone T7 onto T8's host (same I/O signature, different id).
    replica = ServiceDescriptor(
        service_id="T7b",
        input_formats=("F0",),
        output_formats=("F7",),
        cost=1.0,
        description="replica of T7",
    )
    catalog = ServiceCatalog(list(scenario.catalog) + [replica])
    placement = ServicePlacement(
        scenario.topology, {**scenario.placement.as_dict(), "T7b": "n8"}
    )

    def select(removed=frozenset()):
        graph = AdaptationGraphBuilder(
            ServiceCatalog(d for d in catalog if d.service_id not in removed),
            placement,
        ).build(
            scenario.content,
            scenario.device,
            scenario.sender_node,
            scenario.receiver_node,
        )
        return QoSPathSelector.for_user(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user,
            record_trace=False,
        ).run()

    benchmark(lambda: select())

    healthy = select()
    after_loss = select(removed=frozenset({"T7"}))
    rows = [
        ("healthy", ",".join(healthy.path), f"{healthy.satisfaction:.3f}"),
        ("T7 lost", ",".join(after_loss.path), f"{after_loss.satisfaction:.3f}"),
    ]
    save_artifact(
        "resilience_replica.txt",
        "E15 — a replica on another host masks the primary's failure\n\n"
        + format_table(["state", "selected path", "satisfaction"], rows),
    )
    assert after_loss.success
    assert after_loss.path == ("sender", "T7b", "receiver")
    # The replica's host link (n8) carries F7 slightly differently, but
    # the loss is bounded by the n8 access ceiling.
    assert after_loss.satisfaction >= healthy.satisfaction - 0.05
