"""E7 — Table 1: the 15-round step-by-step selection trace.

Regenerates the paper's Table 1 from the reconstructed Figure 6 scenario
and verifies every cell (VT, CS, selected service, selected path, delivered
frame rate, user satisfaction) against the printed values.  The benchmark
times one full traced selection run.
"""

from __future__ import annotations

from repro.workloads.paper import figure6_scenario, table1_expected_rows

from conftest import format_table


def test_table1_regeneration(benchmark, save_artifact):
    scenario = figure6_scenario()
    graph = scenario.build_graph()

    def traced_run():
        return scenario.selector(graph=graph).run()

    result = benchmark(traced_run)

    save_artifact("table1_trace.txt", "Table 1 — regenerated\n\n" + result.trace.render())

    expected = table1_expected_rows()
    assert len(result.trace) == len(expected) == 15
    mismatches = []
    for index, (row, exp) in enumerate(zip(result.trace.rounds, expected), 1):
        observed = (
            row.considered_set,
            row.candidate_set,
            row.selected,
            row.path,
            row.displayed_frame_rate(),
            row.displayed_satisfaction(),
        )
        printed = (
            exp["vt"],
            exp["cs"],
            exp["selected"],
            exp["path"],
            exp["frame_rate"],
            exp["satisfaction"],
        )
        if observed != printed:
            mismatches.append(index)
    comparison = format_table(
        ["round", "selected", "path", "fps", "satisfaction", "matches paper"],
        [
            (
                row.number,
                row.selected,
                ",".join(row.path),
                row.displayed_frame_rate(),
                row.displayed_satisfaction(),
                "no" if row.number in mismatches else "yes",
            )
            for row in result.trace.rounds
        ],
    )
    save_artifact(
        "table1_comparison.txt",
        "Table 1 — cell-by-cell comparison against the paper\n\n"
        + comparison
        + f"\n\nmatching rounds: {15 - len(mismatches)}/15",
    )
    assert mismatches == []
