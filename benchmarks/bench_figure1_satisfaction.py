"""E1 — Figure 1: a possible satisfaction function for the frame rate.

Regenerates the drawn curve (minimum acceptable 5 fps, ideal 20 fps,
monotone rise) as a sampled series plus an ASCII rendering, and times the
evaluation of the satisfaction model.
"""

from __future__ import annotations

from repro.workloads.paper import figure1_satisfaction

from conftest import format_table


def render_ascii(series, height: int = 12) -> str:
    """A terminal sketch of the Figure 1 curve."""
    lines = []
    for level in range(height, -1, -1):
        threshold = level / height
        row = "".join(
            "#" if satisfaction >= threshold - 1e-9 and satisfaction > 0 else " "
            for _, satisfaction in series
        )
        label = f"{threshold:4.2f} |"
        lines.append(label + row)
    axis = "      +" + "-" * len(series)
    ticks = "       " + "".join(
        "^" if abs(x - round(x / 5) * 5) < 0.26 else " " for x, _ in series
    )
    labels = "       " + "".join(
        f"{int(round(x))}".ljust(1) if abs(x - round(x / 5) * 5) < 0.26 else " "
        for x, _ in series
    )
    return "\n".join(lines + [axis, ticks, labels])


def test_figure1_series(benchmark, save_artifact):
    fn = figure1_satisfaction()
    series = benchmark(lambda: fn.series(0.0, 20.0, 41))

    rows = [(f"{x:4.1f}", f"{s:.3f}") for x, s in series[::4]]
    table = format_table(["frames/sec", "satisfaction"], rows)
    sketch = render_ascii(series)
    save_artifact(
        "figure1_satisfaction.txt",
        "Figure 1 — satisfaction function for the frame rate\n"
        "(minimum acceptable = 5 fps -> S=0, ideal = 20 fps -> S=1)\n\n"
        + table
        + "\n\n"
        + sketch,
    )

    # The paper's stated properties.
    assert fn(5.0) == 0.0
    assert fn(20.0) == 1.0
    values = [s for _, s in series]
    assert values == sorted(values)
