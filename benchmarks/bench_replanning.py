"""E13 — extension: mid-session re-planning under bandwidth collapse.

Section 3 motivates the network profile with "the fluctuating network
resources"; the paper's framework implies the selection should be re-run
when the chain degrades.  This bench collapses the winning chain's host
(T7) mid-session and compares a session that re-plans against one that
stubbornly streams on, reporting the satisfaction each actually observed.
"""

from __future__ import annotations

from repro.network.bandwidth import FluctuationModel
from repro.network.topology import Link
from repro.runtime.replanning import AdaptiveSession
from repro.workloads.paper import figure6_scenario

from conftest import format_table


class HostCollapse(FluctuationModel):
    """Both links of one host drop to 5% at a given time."""

    def __init__(self, host: str, at_s: float) -> None:
        self.host = host
        self.at_s = at_s

    def factor(self, link: Link, time_s: float) -> float:
        if time_s >= self.at_s and self.host in link.endpoints():
            return 0.05
        return 1.0


def test_replanning_restores_satisfaction(benchmark, save_artifact):
    scenario = figure6_scenario()
    collapse = HostCollapse(host="n7", at_s=10.0)

    def adaptive_run():
        session = AdaptiveSession(
            scenario, collapse, check_interval_s=1.0, replan_threshold=0.9
        )
        return session.run(duration_s=30.0)

    adaptive = benchmark(adaptive_run)
    # A "stubborn" session: threshold so low it never re-plans.
    stubborn = AdaptiveSession(
        scenario, collapse, check_interval_s=1.0, replan_threshold=0.01
    ).run(duration_s=30.0)

    rows = []
    for label, report in (("adaptive", adaptive), ("stubborn", stubborn)):
        rows.append(
            (
                label,
                " then ".join(",".join(c) for c in report.chains_used()),
                report.replans,
                f"{report.average_observed_satisfaction():.3f}",
            )
        )
    timeline = "\n".join(str(event) for event in adaptive.events)
    save_artifact(
        "replanning.txt",
        "E13 — T7's host collapses at t=10s during a 30s session\n\n"
        + format_table(
            ["session", "chains used", "replans", "avg observed S"], rows
        )
        + "\n\nadaptive session timeline:\n"
        + timeline,
    )

    assert adaptive.replans == 1
    assert adaptive.chains_used() == [
        ("sender", "T7", "receiver"),
        ("sender", "T8", "receiver"),
    ]
    assert (
        adaptive.average_observed_satisfaction()
        > stubborn.average_observed_satisfaction() + 0.1
    )


def test_replanning_overhead(benchmark, save_artifact):
    """How expensive is one re-plan (snapshot + graph + selection)?"""
    scenario = figure6_scenario()
    collapse = HostCollapse(host="n7", at_s=0.0)
    session = AdaptiveSession(scenario, collapse)

    result = benchmark(lambda: session.plan_at(1.0))
    save_artifact(
        "replanning_overhead.txt",
        "E13 — single re-plan (topology snapshot + graph + selection)\n\n"
        + format_table(
            ["item", "value"],
            [
                ("replanned chain", ",".join(result.path)),
                ("satisfaction", f"{result.satisfaction:.3f}"),
                ("timing", "see pytest-benchmark table"),
            ],
        ),
    )
    assert result.path == ("sender", "T8", "receiver")
