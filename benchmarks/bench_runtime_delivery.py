"""E12 — extension: end-to-end delivery through the runtime pipeline.

Streams the Figure 6 plan over the simulated network under increasingly
hostile conditions (static, diurnal sinusoid, bursty random walk) and
reports the delivery metrics — the experiment the paper's framework is
ultimately for.
"""

from __future__ import annotations

from repro.network.bandwidth import RandomWalkBandwidth, SinusoidalBandwidth
from repro.workloads.paper import figure6_scenario

from conftest import format_table

DURATION_S = 30.0


def test_runtime_delivery_conditions(benchmark, save_artifact):
    scenario = figure6_scenario()
    session = scenario.session()
    plan = session.plan()
    assert plan.success

    benchmark(lambda: session.deliver(plan, duration_s=DURATION_S))

    conditions = [
        ("static", None),
        ("sinusoidal 30%", SinusoidalBandwidth(amplitude=0.3, period_s=11.0)),
        ("sinusoidal 60%", SinusoidalBandwidth(amplitude=0.6, period_s=11.0)),
        ("random walk", RandomWalkBandwidth(seed=7, step=0.15, floor=0.35)),
    ]
    rows = []
    delivered = []
    for name, model in conditions:
        report = session.deliver(
            plan, duration_s=DURATION_S, fluctuation=model, seed=1
        )
        delivered.append(report.frames_delivered)
        rows.append(
            (
                name,
                f"{report.average_frame_rate:.2f}",
                f"{report.frame_rate_jitter:.2f}",
                f"{report.loss_fraction * 100:.1f}%",
                f"{report.startup_latency_s * 1000:.1f}",
                f"{report.total_cost:.2f}",
            )
        )
    save_artifact(
        "runtime_delivery.txt",
        f"E12 — delivery of the Figure 6 plan over {DURATION_S:.0f}s\n"
        f"(path {','.join(plan.result.path)}, planned "
        f"{plan.result.delivered_frame_rate:.2f} fps)\n\n"
        + format_table(
            [
                "network condition",
                "avg fps",
                "jitter",
                "frame loss",
                "startup (ms)",
                "cost",
            ],
            rows,
        ),
    )
    # Hostile networks deliver no more than the calm one.
    assert all(d <= delivered[0] for d in delivered[1:])
    # And the heavier sinusoid hurts at least as much as the lighter one.
    assert delivered[2] <= delivered[1]


def test_runtime_startup_latency_scales_with_chain_length(benchmark, save_artifact):
    """Longer chains pay more propagation + processing before first
    frame."""
    from repro.workloads.synthetic import SyntheticConfig, generate_scenario

    rows = []
    latencies = {}
    for hops in (1, 2, 4):
        scenario = generate_scenario(
            SyntheticConfig(
                seed=42,
                n_services=hops,
                backbone_hops=hops,
                n_formats=hops + 2,
                extra_decoders=0,
                cap_probability=0.0,
            )
        )
        session = scenario.session(prune=False)
        plan = session.plan()
        assert plan.success
        report = session.deliver(plan, duration_s=5.0)
        latencies[hops] = report.startup_latency_s
        rows.append(
            (
                hops,
                ",".join(plan.result.path),
                f"{report.startup_latency_s * 1000:.2f}",
            )
        )
    save_artifact(
        "runtime_startup_latency.txt",
        "E12 — startup latency vs chain length\n\n"
        + format_table(["backbone hops", "path", "startup (ms)"], rows),
    )

    scenario = generate_scenario(
        SyntheticConfig(seed=42, n_services=2, backbone_hops=2, extra_decoders=0)
    )
    session = scenario.session(prune=False)
    plan = session.plan()
    benchmark(lambda: session.deliver(plan, duration_s=5.0))
