"""E10 — ablation: the graph-pruning pass.

Section 4 applies 'some optimization techniques on the graph to remove the
extra edges' before selection.  This bench measures what that pass buys:
graph size reduction and selection speedup, with the result provably
unchanged.
"""

from __future__ import annotations

import time

from repro.core.pruning import GraphPruner
from repro.core.selection import QoSPathSelector
from repro.workloads.paper import figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table


def _measure(scenario, graph):
    start = time.perf_counter()
    result = QoSPathSelector.for_user(
        graph,
        scenario.registry,
        scenario.parameters,
        scenario.user,
        record_trace=False,
    ).run()
    return result, (time.perf_counter() - start) * 1000.0


def test_pruning_ablation(benchmark, save_artifact):
    cases = [("figure6", figure6_scenario())]
    for seed, size in ((1, 40), (2, 80), (3, 160)):
        cases.append(
            (
                f"synthetic-{size}",
                generate_scenario(
                    SyntheticConfig(seed=seed, n_services=size, n_nodes=12)
                ),
            )
        )

    pruner = GraphPruner()
    benchmark(lambda: pruner.prune(cases[0][1].build_graph()))

    rows = []
    for name, scenario in cases:
        graph = scenario.build_graph()
        pruned, report = pruner.prune(graph)
        raw_result, raw_ms = _measure(scenario, graph)
        pruned_result, pruned_ms = _measure(scenario, pruned)
        assert raw_result.success == pruned_result.success
        if raw_result.success:
            assert abs(raw_result.satisfaction - pruned_result.satisfaction) < 1e-9
        rows.append(
            (
                name,
                f"{report.vertices_before}->{report.vertices_after}",
                f"{report.edges_before}->{report.edges_after}",
                f"{raw_ms:.2f}",
                f"{pruned_ms:.2f}",
                "yes",
            )
        )
    save_artifact(
        "ablation_pruning.txt",
        "E10 — pruning ablation (same selection result, smaller graph)\n\n"
        + format_table(
            [
                "scenario",
                "vertices",
                "edges",
                "select raw (ms)",
                "select pruned (ms)",
                "result equal",
            ],
            rows,
        ),
    )
