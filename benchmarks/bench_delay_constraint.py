"""E18 — extension: end-to-end delay bounds.

Section 3's network profile lists "maximum delay" among the measured QoS
characteristics, and the introduction names low delay as a strict
multimedia requirement — but the worked example never binds it.  This
bench sweeps a delay bound over a two-route scenario (good-but-far vs
poor-but-near) and charts the satisfaction/latency trade-off the selector
makes.
"""

from __future__ import annotations

import math

from repro.core.selection import QoSPathSelector

from conftest import format_table
from tests.test_delay_constraint import delay_world

BOUNDS = (math.inf, 400.0, 200.0, 100.0, 50.0, 20.0, 5.0)


def test_delay_bound_sweep(benchmark, save_artifact):
    registry, graph, parameters, satisfaction = delay_world()

    def run(bound: float):
        return QoSPathSelector(
            graph,
            registry,
            parameters,
            satisfaction,
            max_delay_ms=bound,
            record_trace=False,
        ).run()

    benchmark(lambda: run(50.0))

    rows = []
    satisfactions = []
    for bound in BOUNDS:
        result = run(bound)
        if result.success:
            satisfactions.append(result.satisfaction)
            rows.append(
                (
                    "unbounded" if math.isinf(bound) else f"{bound:.0f} ms",
                    ",".join(result.path),
                    f"{result.accumulated_delay_ms:.0f} ms",
                    f"{result.satisfaction:.3f}",
                )
            )
        else:
            rows.append(
                (
                    f"{bound:.0f} ms",
                    "TERMINATE(FAILURE)",
                    "-",
                    "-",
                )
            )
    save_artifact(
        "delay_constraint.txt",
        "E18 — delay-bound sweep (good route: 200 ms, fast route: 20 ms)\n\n"
        + format_table(
            ["max delay", "selected path", "path delay", "satisfaction"], rows
        ),
    )
    # Tightening the bound never raises satisfaction.
    assert satisfactions == sorted(satisfactions, reverse=True)
    # The crossover: bounds >= 200 take the good route, below it the fast
    # one, below 20 nothing works.
    assert rows[0][1].count("T_slow") == 1
    assert rows[-2][1].count("T_fast") == 1
    assert rows[-1][1] == "TERMINATE(FAILURE)"
