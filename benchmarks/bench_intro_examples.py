"""E17 — Section 1's motivating examples, reproduced.

The introduction's two concrete claims:

1. the JPEG→GIF conversion "can be carried out in two stages" by chaining
   simple services — and doing so is cheaper than a monolithic converter;
2. web adaptation (HTML→WML, tables→text) falls out of the same machinery.

This bench runs both scenarios and regenerates the composition-vs-monolith
comparison.
"""

from __future__ import annotations

from repro.workloads.intro import html_to_wml_scenario, jpeg_to_gif_scenario

from conftest import format_table


def test_jpeg_to_gif_two_stage_composition(benchmark, save_artifact):
    def solve():
        return jpeg_to_gif_scenario(include_monolith=True).select()

    result = benchmark(solve)

    # The monolith with a raised budget, for comparison.
    rich = jpeg_to_gif_scenario(include_monolith=True)
    rich.catalog.remove("color-reduce")
    rich.catalog.remove("jpeg-to-gif")
    rich.user.budget = 10.0
    monolith = rich.select()

    rows = [
        (
            "two-stage composition",
            ",".join(result.path),
            f"{result.accumulated_cost:.2f}",
            f"{result.satisfaction:.3f}",
        ),
        (
            "monolithic converter",
            ",".join(monolith.path),
            f"{monolith.accumulated_cost:.2f}",
            f"{monolith.satisfaction:.3f}",
        ),
    ]
    save_artifact(
        "intro_jpeg_to_gif.txt",
        "E17 — 256-color JPEG -> 2-color GIF (Section 1's example)\n\n"
        + format_table(["strategy", "chain", "cost", "satisfaction"], rows),
    )

    assert result.path == ("sender", "color-reduce", "jpeg-to-gif", "receiver")
    assert result.formats == ("jpeg-256c", "jpeg-2c", "gif-2c")
    # Same delivered quality, a third of the price.
    assert result.satisfaction == monolith.satisfaction
    assert result.accumulated_cost < monolith.accumulated_cost


def test_html_to_wml_adaptation(benchmark, save_artifact):
    def solve():
        return html_to_wml_scenario().select()

    direct = benchmark(solve)
    degraded = html_to_wml_scenario()
    degraded.catalog.remove("html-to-wml")
    fallback = degraded.select()

    rows = [
        ("direct converter", ",".join(direct.path), f"{direct.satisfaction:.3f}"),
        ("fallback composition", ",".join(fallback.path), f"{fallback.satisfaction:.3f}"),
    ]
    save_artifact(
        "intro_html_to_wml.txt",
        "E17 — HTML -> WML web adaptation (Section 1's example)\n\n"
        + format_table(["situation", "chain", "satisfaction"], rows),
    )
    assert direct.path == ("sender", "html-to-wml", "receiver")
    assert fallback.path == ("sender", "table-to-text", "text-to-wml", "receiver")
    assert fallback.satisfaction < direct.satisfaction
