"""E5 — Figure 5: the greedy-optimality argument.

The paper argues (Figure 5) that because transcoders can only reduce
quality, the greedy settle-the-best-candidate expansion yields the
maximum achievable satisfaction.  This bench checks the claim empirically:
greedy vs. exhaustive search over a family of seeded random scenarios,
reporting agreement rates and the speedup the greedy buys.
"""

from __future__ import annotations

import math
import time

from repro.core.baselines import ExhaustiveSelector
from repro.core.selection import QoSPathSelector
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

SEEDS = list(range(24))


def _pair(seed: int):
    scenario = generate_scenario(SyntheticConfig(seed=seed, n_services=18))
    graph = scenario.build_graph()
    greedy = QoSPathSelector.for_user(
        graph, scenario.registry, scenario.parameters, scenario.user
    ).run()
    exhaustive = ExhaustiveSelector(
        graph,
        scenario.registry,
        scenario.parameters,
        scenario.user.satisfaction(),
        scenario.user.budget,
        max_paths=50_000,
    )
    optimum = exhaustive.run()
    return greedy, optimum, exhaustive.paths_examined


def test_figure5_greedy_equals_optimum(benchmark, save_artifact):
    rows = []
    agreements = 0
    benchmark(lambda: _pair(SEEDS[0]))  # time one representative pair
    for seed in SEEDS:
        greedy, optimum, examined = _pair(seed)
        agree = (
            greedy.success == optimum.success
            and (
                not greedy.success
                or math.isclose(
                    greedy.satisfaction, optimum.satisfaction, abs_tol=1e-9
                )
            )
        )
        agreements += agree
        rows.append(
            (
                seed,
                f"{greedy.satisfaction:.4f}" if greedy.success else "FAIL",
                f"{optimum.satisfaction:.4f}" if optimum.success else "FAIL",
                examined,
                "yes" if agree else "NO",
            )
        )
    save_artifact(
        "figure5_optimality.txt",
        "Figure 5 — greedy vs exhaustive optimum (quality-monotone "
        "transcoders)\n\n"
        + format_table(
            ["seed", "greedy S", "optimal S", "paths examined", "agree"], rows
        )
        + f"\n\nagreement: {agreements}/{len(SEEDS)} scenarios",
    )
    assert agreements == len(SEEDS)


def test_figure5_monotonicity_is_load_bearing(benchmark, save_artifact):
    """The converse: with a *budget* coupling (a resource the greedy does
    not re-optimize), greedy can diverge from the constrained optimum —
    the optimality argument really does rest on its assumptions.

    We sweep budgets on a crafted two-route scenario: an expensive good
    route and a cheap mediocre one.  Greedy still respects the budget, but
    exhaustive search may find a better affordable path in general; here
    they agree on every budget (single-hop routes), demonstrating the
    boundary of the claim rather than a failure.
    """
    from tests.test_selection import fps_satisfaction, pinned_parameters, tiny_world

    registry, graph = tiny_world(t1_cost=5.0, t2_cost=1.0)

    def sweep():
        rows = []
        for budget in (0.5, 1.0, 2.0, 5.0, 10.0):
            greedy = QoSPathSelector(
                graph, registry, pinned_parameters(), fps_satisfaction(), budget=budget
            ).run()
            optimum = ExhaustiveSelector(
                graph, registry, pinned_parameters(), fps_satisfaction(), budget
            ).run()
            rows.append(
                (
                    budget,
                    ",".join(greedy.path) if greedy.success else "FAIL",
                    f"{greedy.satisfaction:.3f}" if greedy.success else "-",
                    f"{optimum.satisfaction:.3f}" if optimum.success else "-",
                )
            )
        return rows

    rows = benchmark(sweep)
    save_artifact(
        "figure5_budget_boundary.txt",
        "Figure 5 boundary — greedy under budget constraints\n\n"
        + format_table(["budget", "greedy path", "greedy S", "optimal S"], rows),
    )
    for _, _, greedy_s, optimal_s in rows:
        if greedy_s != "-":
            assert greedy_s == optimal_s
