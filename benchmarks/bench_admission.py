"""E16 — extension: concurrent sessions under admission control.

Section 2 argues the proxy-based approach "scal[es] properly with the
number of clients".  This bench admits identical clients one after another
onto the Figure 6 infrastructure, each new session planned against the
bandwidth the previous ones left (the reservation ledger), and charts the
satisfaction of the k-th admission until the infrastructure saturates —
then tears one session down and shows capacity returning.
"""

from __future__ import annotations

from repro.runtime.admission import AdmissionController
from repro.workloads.paper import figure6_scenario

from conftest import format_table


def fresh_controller():
    scenario = figure6_scenario()
    controller = AdmissionController(
        registry=scenario.registry,
        parameters=scenario.parameters,
        catalog=scenario.catalog,
        placement=scenario.placement,
        min_satisfaction=0.10,
    )
    return scenario, controller


def admit_once(scenario, controller):
    return controller.admit(
        content=scenario.content,
        device=scenario.device,
        user=scenario.user,
        sender_node=scenario.sender_node,
        receiver_node=scenario.receiver_node,
    )


def test_admission_until_saturation(benchmark, save_artifact):
    def one_admission_cycle():
        scenario, controller = fresh_controller()
        session = admit_once(scenario, controller)
        controller.teardown(session.session_id)
        return session

    benchmark(one_admission_cycle)

    scenario, controller = fresh_controller()
    rows = []
    admitted = []
    k = 0
    while True:
        k += 1
        session = admit_once(scenario, controller)
        if session is None:
            rows.append((k, "REJECTED", "-", "-"))
            break
        admitted.append(session)
        rows.append(
            (
                k,
                ",".join(session.result.path),
                f"{session.result.delivered_frame_rate:.2f}",
                f"{session.satisfaction:.3f}",
            )
        )
        if k > 40:  # safety net; the infrastructure saturates well before
            break

    # Tear down the first (best) session and admit once more.
    controller.teardown(admitted[0].session_id)
    revived = admit_once(scenario, controller)
    rows.append(
        (
            "after teardown",
            ",".join(revived.result.path) if revived else "REJECTED",
            f"{revived.result.delivered_frame_rate:.2f}" if revived else "-",
            f"{revived.satisfaction:.3f}" if revived else "-",
        )
    )

    save_artifact(
        "admission.txt",
        "E16 — successive admissions on the Figure 6 infrastructure\n"
        "(identical clients; floor S >= 0.10)\n\n"
        + format_table(["admission", "chain", "fps", "satisfaction"], rows),
    )

    satisfactions = [s.satisfaction for s in admitted]
    # Shape: capacity is finite, early sessions fare best, teardown gives
    # capacity back.
    assert 2 <= len(admitted) <= 40
    assert satisfactions == sorted(satisfactions, reverse=True)
    assert revived is not None
    assert revived.satisfaction >= satisfactions[-1] - 1e-9
