"""E8 — extension: scalability of the greedy selector vs the baselines.

The paper notes its algorithm has 'similar complexity' to shortest-path
search; this bench measures that: wall-clock and achieved satisfaction for
the greedy selector against the classic baselines while the service count
grows.  Exhaustive search is included while it stays tractable, to show
the quality gap (none) and the cost gap (exponential).
"""

from __future__ import annotations

import statistics
import time

from repro.core.baselines import (
    CheapestPathSelector,
    ExhaustiveSelector,
    FewestHopsSelector,
    RandomPathSelector,
    WidestPathSelector,
)
from repro.core.selection import QoSPathSelector
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from conftest import format_table

SIZES = (10, 25, 50, 100, 200)
SEEDS_PER_SIZE = 3
EXHAUSTIVE_LIMIT = 50  # beyond this the enumeration is left out


def _run_once(scenario, graph, name):
    args = (
        graph,
        scenario.registry,
        scenario.parameters,
        scenario.user.satisfaction(),
        scenario.user.budget,
    )
    if name == "greedy":
        selector = QoSPathSelector.for_user(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user,
            record_trace=False,
        )
    elif name == "exhaustive":
        selector = ExhaustiveSelector(*args, max_paths=100_000)
    elif name == "fewest-hops":
        selector = FewestHopsSelector(*args)
    elif name == "widest":
        selector = WidestPathSelector(*args)
    elif name == "cheapest":
        selector = CheapestPathSelector(*args)
    else:
        selector = RandomPathSelector(*args, seed=0)
    start = time.perf_counter()
    result = selector.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_scalability_sweep(benchmark, save_artifact):
    medium = generate_scenario(SyntheticConfig(seed=0, n_services=50, n_nodes=16))
    medium_graph = medium.build_graph()
    benchmark(
        lambda: QoSPathSelector.for_user(
            medium_graph,
            medium.registry,
            medium.parameters,
            medium.user,
            record_trace=False,
        ).run()
    )

    rows = []
    for size in SIZES:
        names = ["greedy", "fewest-hops", "widest", "cheapest", "random"]
        if size <= EXHAUSTIVE_LIMIT:
            names.insert(1, "exhaustive")
        per_algo = {name: {"sat": [], "ms": []} for name in names}
        for seed in range(SEEDS_PER_SIZE):
            scenario = generate_scenario(
                SyntheticConfig(
                    seed=seed,
                    n_services=size,
                    n_nodes=max(6, size // 6),
                    n_formats=max(8, size // 4),
                )
            )
            graph = scenario.build_graph()
            for name in names:
                result, elapsed = _run_once(scenario, graph, name)
                per_algo[name]["sat"].append(
                    result.satisfaction if result.success else 0.0
                )
                per_algo[name]["ms"].append(elapsed * 1000.0)
        for name in names:
            rows.append(
                (
                    size,
                    name,
                    f"{statistics.mean(per_algo[name]['sat']):.4f}",
                    f"{statistics.mean(per_algo[name]['ms']):.2f}",
                )
            )

    save_artifact(
        "scalability.txt",
        "E8 — scalability sweep (mean over "
        f"{SEEDS_PER_SIZE} seeds per size)\n\n"
        + format_table(
            ["services", "algorithm", "mean satisfaction", "mean time (ms)"], rows
        ),
    )

    # Shape assertions: greedy matches exhaustive where both ran and never
    # loses to the classic heuristics.
    by_key = {(size, name): row for size, name, *row in rows}
    for size in SIZES:
        greedy_sat = float(by_key[(size, "greedy")][0])
        for rival in ("fewest-hops", "widest", "cheapest", "random"):
            assert greedy_sat >= float(by_key[(size, rival)][0]) - 1e-9
        if size <= EXHAUSTIVE_LIMIT:
            assert abs(greedy_sat - float(by_key[(size, "exhaustive")][0])) < 1e-6
