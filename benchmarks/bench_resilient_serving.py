"""E21 — extension: resilient serving under gray failure.

The paper's composition layer assumes reported QoS is honest; a gray-
failing service (drops a fraction of attempts while still advertising
itself) breaks that silently.  This experiment measures what the
failure detector + circuit breaker stack (``repro.serve.health``) buys
the gateway over an unprotected baseline:

- **Storm regime** — one backbone service drops 80% of attempts.  The
  unprotected gateway keeps routing through it and sustains the
  failure rate; the breaker-enabled gateway detects the failure from
  ``POST /report`` outcome feeds, quarantines the service, and the
  tail of the campaign recovers to >= 95% delivered success.  Both
  campaigns are seeded and serial, so the storm digest is bit-stable
  across same-seed runs.
- **Degraded regime** — every service quarantined at once (breaker-open
  storm).  The gateway must keep answering 200/degraded passthrough
  plans, and the accepted-request p99 must stay inside the 250 ms
  deadline: degradation is a fast path, not a slow one.
- **Recovery regime** — after the cooldown the breaker HALF_OPENs,
  successful probes close it, and full-quality plans resume.

Run directly:
    PYTHONPATH=src python -m pytest benchmarks/bench_resilient_serving.py -v
Scale with RESILIENT_BENCH_REQUESTS (default 400 per storm campaign).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time

from conftest import format_table

from repro.serve import GatewayConfig, HealthConfig, PlanningGateway
from repro.serve.http11 import read_response, render_request
from repro.serve.protocol import encode_payload
from repro.sim import percentile
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

REQUESTS = int(os.environ.get("RESILIENT_BENCH_REQUESTS", "400"))
SEED = 7
DEADLINE_MS = 250.0
FAILURE_RATE = 0.8
RECOVERY_FLOOR = 0.95

SCENARIO = generate_scenario(
    SyntheticConfig(seed=SEED, n_services=10, n_formats=6, n_nodes=6)
)
ALL_SERVICES = [d.service_id for d in SCENARIO.catalog]


async def _request(port: int, method: str, path: str, payload=None):
    body = encode_payload(payload) if payload is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(render_request(method, path, body, keep_alive=False))
        await writer.drain()
        response = await asyncio.wait_for(read_response(reader), timeout=10.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    decoded = json.loads(response.body) if response.body else {}
    return response.status, decoded


def storm_health() -> HealthConfig:
    # Effectively infinite cooldown: transitions are purely sample-driven
    # (CLOSED -> OPEN only), so the storm trace depends on nothing but
    # the seeded failure rolls — that is what makes the digest bit-stable.
    return HealthConfig(min_samples=4, cooldown_s=1e9, seed=SEED)


def run_storm(protected: bool, requests: int, seed: int = SEED) -> dict:
    """Serial plan -> simulated delivery -> outcome report campaign.

    One backbone service silently drops FAILURE_RATE of the attempts
    that route through it.  Each request reports per-service outcomes
    back to the gateway, which is all the breaker ever sees.
    """
    import random

    rolls = random.Random(f"{seed}:gray-storm")

    async def campaign():
        config = GatewayConfig(
            port=0, workers=2,
            health=storm_health() if protected else None,
        )
        gateway = PlanningGateway(SCENARIO, config)
        await gateway.start()
        try:
            _, baseline = await _request(gateway.port, "POST", "/plan", {})
            victim = next(
                sid for sid in baseline["path"]
                if sid not in ("sender", "receiver")
            )
            records = []
            detected_at = None
            for index in range(requests):
                status, plan = await _request(
                    gateway.port, "POST", "/plan", {}
                )
                path = plan.get("path", [])
                hops = [s for s in path if s not in ("sender", "receiver")]
                # Gray failure: the victim drops the segment silently.
                failed = (
                    victim in hops and rolls.random() < FAILURE_RATE
                )
                delivered = status == 200 and not failed
                if detected_at is None and victim not in hops:
                    detected_at = index
                records.append(
                    (
                        index,
                        status,
                        plan.get("status", "error"),
                        bool(plan.get("degraded", False)),
                        tuple(path),
                        delivered,
                    )
                )
                if hops:
                    await _request(
                        gateway.port,
                        "POST",
                        "/report",
                        {
                            "client": "bench",
                            "outcomes": [
                                {
                                    "service": sid,
                                    "success": not (failed and sid == victim),
                                }
                                for sid in hops
                            ],
                        },
                    )
            _, health = await _request(gateway.port, "GET", "/health")
            return victim, records, detected_at, health
        finally:
            await gateway.drain()

    victim, records, detected_at, health = asyncio.run(campaign())
    tail = records[len(records) // 2:]
    digest = hashlib.sha256(
        json.dumps(records, separators=(",", ":")).encode()
    ).hexdigest()
    return {
        "victim": victim,
        "requests": len(records),
        "success_rate": sum(r[5] for r in records) / max(len(records), 1),
        "tail_success_rate": sum(r[5] for r in tail) / max(len(tail), 1),
        "detected_at": detected_at,
        "degraded": sum(1 for r in records if r[3]),
        "digest": digest,
        "health": health,
    }


def run_degraded_storm(requests: int) -> dict:
    """Quarantine every service, then hammer /plan: all answers must be
    degraded passthroughs and the p99 must stay inside the deadline."""

    async def campaign():
        gateway = PlanningGateway(
            SCENARIO, GatewayConfig(port=0, workers=2, health=storm_health())
        )
        await gateway.start()
        try:
            outcomes = []
            for sid in ALL_SERVICES:
                outcomes.extend(
                    {"service": sid, "success": False} for _ in range(8)
                )
            await _request(
                gateway.port, "POST", "/report",
                {"client": "bench", "outcomes": outcomes},
            )
            latencies, statuses = [], []
            for _ in range(requests):
                started = time.perf_counter()
                status, plan = await _request(
                    gateway.port, "POST", "/plan", {}
                )
                latencies.append((time.perf_counter() - started) * 1e3)
                statuses.append((status, plan.get("degraded", False)))
            ready = await _request(gateway.port, "GET", "/readyz")
            return latencies, statuses, ready
        finally:
            await gateway.drain()

    latencies, statuses, ready = asyncio.run(campaign())
    return {
        "requests": len(latencies),
        "all_degraded": all(s == (200, True) for s in statuses),
        "p50_ms": percentile(latencies, 50.0),
        "p99_ms": percentile(latencies, 99.0),
        "readyz": ready,
    }


def run_recovery() -> dict:
    """Open the victim's breaker, wait out the cooldown, feed successful
    probes, and confirm full-quality plans come back."""

    async def campaign():
        gateway = PlanningGateway(
            SCENARIO,
            GatewayConfig(
                port=0, workers=2,
                health=HealthConfig(
                    min_samples=4, cooldown_s=0.2,
                    cooldown_jitter=0.0, seed=SEED,
                ),
            ),
        )
        await gateway.start()
        try:
            _, baseline = await _request(gateway.port, "POST", "/plan", {})
            victim = next(
                sid for sid in baseline["path"]
                if sid not in ("sender", "receiver")
            )
            await _request(
                gateway.port, "POST", "/report",
                {
                    "client": "bench",
                    "outcomes": [
                        {"service": victim, "success": False}
                        for _ in range(8)
                    ],
                },
            )
            _, opened = await _request(gateway.port, "GET", "/health")
            await asyncio.sleep(0.5)
            probes = 0
            state = "open"
            for _ in range(30):
                await _request(
                    gateway.port, "POST", "/report",
                    {
                        "client": "bench",
                        "outcomes": [{"service": victim, "success": True}],
                    },
                )
                probes += 1
                _, health = await _request(gateway.port, "GET", "/health")
                state = health["services"][victim]["state"]
                if state == "closed":
                    break
                await asyncio.sleep(0.02)
            _, final = await _request(gateway.port, "POST", "/plan", {})
            return victim, opened, probes, state, final
        finally:
            await gateway.drain()

    victim, opened, probes, state, final = asyncio.run(campaign())
    return {
        "victim": victim,
        "opened": opened["services"][victim]["state"],
        "probes": probes,
        "state": state,
        "restored": final["status"] == "ok" and not final["degraded"],
    }


def test_breaker_restores_success_under_gray_failure(benchmark, save_artifact):
    # ---- storm regime ----------------------------------------------------
    protected = run_storm(protected=True, requests=REQUESTS)
    baseline = run_storm(protected=False, requests=REQUESTS)
    rerun = run_storm(protected=True, requests=REQUESTS)

    assert protected["victim"] == baseline["victim"]
    # Unprotected: the gateway keeps routing through the gray-failing
    # service forever, so delivered success hovers at ~1 - FAILURE_RATE.
    assert baseline["detected_at"] is None
    assert baseline["tail_success_rate"] < 0.5, (
        f"baseline tail success {baseline['tail_success_rate']:.2f} — the "
        "gray failure is not biting; the comparison is meaningless"
    )
    # Protected: the breaker opens within the sample window and the tail
    # of the campaign routes around the victim.
    assert protected["detected_at"] is not None
    assert protected["detected_at"] <= 40, (
        f"breaker needed {protected['detected_at']} requests to quarantine "
        "an 80%-failing service"
    )
    assert protected["health"]["open"] == [protected["victim"]]
    assert protected["tail_success_rate"] >= RECOVERY_FLOOR, (
        f"protected tail success {protected['tail_success_rate']:.2f} below "
        f"the {RECOVERY_FLOOR:.0%} recovery floor"
    )
    # Same seed, same storm, bit for bit.
    assert protected["digest"] == rerun["digest"], (
        "same-seed protected campaigns diverged"
    )

    # ---- degraded regime -------------------------------------------------
    degraded = run_degraded_storm(max(100, REQUESTS // 4))
    assert degraded["all_degraded"], (
        "breaker-open storm produced non-degraded or non-200 answers"
    )
    assert degraded["p99_ms"] < DEADLINE_MS, (
        f"degraded-mode p99 {degraded['p99_ms']:.1f} ms breaches the "
        f"{DEADLINE_MS:.0f} ms deadline — passthrough is not a fast path"
    )
    assert degraded["readyz"][0] == 503  # majority-open: not ready

    # ---- recovery regime -------------------------------------------------
    recovery = run_recovery()
    assert recovery["opened"] == "open"
    assert recovery["state"] == "closed"
    assert recovery["restored"], (
        "plans did not return to full quality after the breaker closed"
    )

    # Timing harness: one boot-to-drained protected storm burst.
    burst = max(60, REQUESTS // 4)
    benchmark.pedantic(
        lambda: run_storm(protected=True, requests=burst),
        rounds=3, iterations=1, warmup_rounds=0,
    )

    rows = [
        ("requests per storm", f"{protected['requests']}"),
        ("gray victim / failure rate",
         f"{protected['victim']} / {FAILURE_RATE:.0%}"),
        ("unprotected success (tail)",
         f"{baseline['tail_success_rate']:.1%} (never detects)"),
        ("protected success (tail)",
         f"{protected['tail_success_rate']:.1%} "
         f"(floor {RECOVERY_FLOOR:.0%})"),
        ("time to quarantine",
         f"{protected['detected_at']} requests"),
        ("storm digest", protected["digest"][:16] + "  (stable on rerun)"),
        ("degraded p50 / p99",
         f"{degraded['p50_ms']:.1f} / {degraded['p99_ms']:.1f} ms "
         f"(budget {DEADLINE_MS:.0f} ms)"),
        ("degraded answers", f"{degraded['requests']}/"
         f"{degraded['requests']} within deadline"),
        ("recovery probes to close", f"{recovery['probes']}"),
    ]
    save_artifact(
        "resilient_serving.txt",
        f"E21 — gray-failure storm: breaker-enabled gateway vs unprotected "
        f"baseline (deadline {DEADLINE_MS:.0f} ms, seed {SEED})\n\n"
        + format_table(["metric", "value"], rows),
    )
