"""E4 — Figure 4: the route-selection algorithm itself.

Times one full run of the greedy QoS path selection over the paper's
Figure 6 graph, and exercises both exits of the pseudo-code: Step 10
(success: print the reverse path) and Step 3 (TERMINATE(FAILURE)).
"""

from __future__ import annotations

from repro.core.selection import QoSPathSelector
from repro.workloads.paper import figure6_scenario

from conftest import format_table


def test_figure4_selection_success_exit(benchmark, save_artifact):
    scenario = figure6_scenario()
    graph = scenario.build_graph()

    def run():
        return QoSPathSelector.for_user(
            graph, scenario.registry, scenario.parameters, scenario.user
        ).run()

    result = benchmark(run)

    rows = [
        ("exit taken", "Step 10 (success)"),
        ("reverse path printed", " <- ".join(reversed(result.path))),
        ("rounds executed", str(result.rounds_run)),
        ("user satisfaction", f"{result.satisfaction:.4f}"),
        ("accumulated cost", f"{result.accumulated_cost:.2f}"),
    ]
    save_artifact(
        "figure4_algorithm.txt",
        "Figure 4 — route selection algorithm, success exit\n\n"
        + format_table(["item", "value"], rows),
    )

    assert result.success
    assert result.path == ("sender", "T7", "receiver")


def test_figure4_failure_exit(benchmark, save_artifact):
    """Step 3: 'if is_empty(CS) then TERMINATE(FAILURE)'.

    A zero budget makes every candidate unaffordable, so CS never gains a
    member and the algorithm must fail cleanly (and fast).
    """
    scenario = figure6_scenario(budget=0.0)
    graph = scenario.build_graph()

    def run():
        return QoSPathSelector.for_user(
            graph, scenario.registry, scenario.parameters, scenario.user
        ).run()

    result = benchmark(run)
    save_artifact(
        "figure4_failure.txt",
        "Figure 4 — route selection algorithm, failure exit\n\n"
        + format_table(
            ["item", "value"],
            [
                ("exit taken", "Step 3 (TERMINATE FAILURE)"),
                ("rounds executed", str(result.rounds_run)),
                ("reason", result.failure_reason),
            ],
        ),
    )
    assert not result.success
    assert result.rounds_run == 0
